package engine

import (
	"fmt"
	"strings"
	"time"

	"etsqp/internal/sqlparse"
)

// AnalyzeInfo pairs a pre-execution plan with the counters an actual run
// observed — the EXPLAIN ANALYZE result. Plan holds the estimates the
// planner produced before running; Result.Stats holds what the pipelines
// actually did, so the two can be compared line by line.
type AnalyzeInfo struct {
	Plan    *PlanInfo
	Result  *Result
	Elapsed time.Duration
	// Trace holds the per-query span tree. ExplainAnalyze always collects
	// it (the query is being inspected anyway); rendered under the
	// counters block and available for JSON dumping via Trace.WriteJSON.
	Trace *Trace
}

// String renders the plan tree with an "analyze:" block of observed
// counters and per-stage wall time appended under the estimates.
func (a *AnalyzeInfo) String() string {
	var b strings.Builder
	b.WriteString(a.Plan.String())
	st := a.Result.Stats
	write := func(format string, args ...any) {
		b.WriteString("  ")
		b.WriteString(fmt.Sprintf(format, args...))
		b.WriteByte('\n')
	}
	write("analyze:")
	write("  pages: relevant=%d read=%d pruned=%d stat-answered=%d",
		st.PagesTotal, st.PagesRead, st.PagesPruned, st.StatAnswered)
	write("  slices: %d  tuples loaded: %d  rows pruned: %d  rows out: %d",
		st.SlicesRun, st.TuplesLoaded, st.RowsPruned, a.Result.rowsOut())
	write("  values: fused=%d decoded=%d", st.ValuesFused, st.ValuesDecoded)
	if st.MergeRanges > 0 {
		write("  merge ranges: %d", st.MergeRanges)
	}
	if st.WindowSegments > 0 {
		write("  window segments: %d", st.WindowSegments)
	}
	if st.CursorBatches > 0 {
		write("  cursor batches: %d", st.CursorBatches)
	}
	if st.CacheHits+st.CacheMisses > 0 {
		write("  page cache: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
	write("  bytes scanned: %d", st.BytesScanned)
	write("  elapsed: %v", a.Elapsed)
	write("  stages: prune=%v io=%v decode=%v filter=%v agg=%v window=%v merge=%v",
		time.Duration(st.PruneNanos),
		time.Duration(st.IONanos), time.Duration(st.DecodeNanos),
		time.Duration(st.FilterNanos), time.Duration(st.AggNanos),
		time.Duration(st.WindowNanos), time.Duration(st.MergeNanos))
	if st.MorselsRun > 0 {
		write("  resources: cpu=%v morsels=%d stolen=%d arena=%dB",
			time.Duration(st.CPUNanos), st.MorselsRun, st.MorselsStolen, st.ArenaHighWater)
	}
	if a.Trace != nil {
		b.WriteString(a.Trace.String())
	}
	return b.String()
}

// ExplainAnalyze plans a statement, runs it, and returns the plan
// annotated with the observed execution statistics and wall time.
func (e *Engine) ExplainAnalyze(sql string) (*AnalyzeInfo, error) {
	tr := NewTrace(sql, e.Mode.String(), e.workers())
	parseStart := time.Now()
	q, err := sqlparse.Parse(sql)
	tr.parseNs = int64(time.Since(parseStart))
	if err != nil {
		return nil, err
	}
	planStart := time.Now()
	plan, err := e.explainQuery(q)
	tr.planNs = int64(time.Since(planStart))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := e.ExecuteTraced(q, tr)
	if err != nil {
		return nil, err
	}
	return &AnalyzeInfo{Plan: plan, Result: res, Elapsed: time.Since(start), Trace: tr}, nil
}
