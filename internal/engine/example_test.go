package engine_test

import (
	"fmt"
	"log"

	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

// Store a small series and aggregate it through the vectorized pipeline.
func ExampleEngine_ExecuteSQL() {
	ts := []int64{1000, 2000, 3000, 4000, 5000}
	vals := []int64{10, 20, 30, 40, 50}
	st := storage.NewStore()
	if err := st.Append("sensor", ts, vals, storage.Options{}); err != nil {
		log.Fatal(err)
	}
	e := engine.New(st, engine.ModeETSQP)
	res, err := e.ExecuteSQL("SELECT SUM(A), AVG(A) FROM sensor WHERE TIME >= 2000 AND TIME <= 4000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUM=%v AVG=%v\n", res.Aggregates["SUM(A)"], res.Aggregates["AVG(A)"])
	// Output: SUM=90 AVG=30
}

// Sliding-window down-sampling (the paper's motivating query shape).
func ExampleEngine_ExecuteSQL_slidingWindow() {
	n := 100
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 10
		vals[i] = int64(i)
	}
	st := storage.NewStore()
	if err := st.Append("s", ts, vals, storage.Options{}); err != nil {
		log.Fatal(err)
	}
	e := engine.New(st, engine.ModeETSQP)
	res, err := e.ExecuteSQL("SELECT SUM(A) FROM s SW(0, 250)") // 25 points per window
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Windows[:2] {
		fmt.Printf("window [%d,%d): %v\n", w.Start, w.End, w.Value)
	}
	// Output:
	// window [0,250): 300
	// window [250,500): 925
}

// Inspect the execution plan without running the query.
func ExampleEngine_Explain() {
	ts := []int64{1, 2, 3, 4}
	st := storage.NewStore()
	if err := st.Append("s", ts, ts, storage.Options{}); err != nil {
		log.Fatal(err)
	}
	e := engine.New(st, engine.ModeETSQPPrune)
	e.Workers = 2
	info, err := e.Explain("SELECT SUM(A) FROM (SELECT * FROM s WHERE A > 1)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shape=%s pruning=%v fused=%v\n", info.Shape, info.Pruning, info.Fused)
	// Output: shape=aggregate pruning=true fused=false
}
