package engine

import (
	"strings"
	"testing"

	"etsqp/internal/storage"
)

// TestPlanInfoHoppingGolden pins the EXPLAIN rendering for overlapping
// (slide < width) window plans in both grammatical forms.
func TestPlanInfoHoppingGolden(t *testing.T) {
	store := planStore(t)
	cases := []struct {
		name string
		sql  string
		want string
	}{
		{
			name: "group-by-time-hopping",
			sql:  "SELECT SUM(A) FROM ts GROUP BY TIME(1024, 512)",
			want: "window query [ETSQP]\n" +
				"  series: ts\n" +
				"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
				"  fused decoders: true  pruning: false\n" +
				"  window instances: 6\n",
		},
		{
			// The SW form with an explicit anchor at the series start plans
			// identically to the GROUP BY TIME form.
			name: "sw-with-slide",
			sql:  "SELECT SUM(A) FROM ts SW(1000, 1024, 512)",
			want: "window query [ETSQP]\n" +
				"  series: ts\n" +
				"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
				"  fused decoders: true  pruning: false\n" +
				"  window instances: 6\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(store, ModeETSQP)
			e.Workers = 2
			info, err := e.Explain(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if got := info.String(); got != tc.want {
				t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestExplainAnalyzeWindowGolden pins the analyze-annotated rendering of
// a hopping-window aggregate: the fused segment path reports the shared
// segment count next to the instance count (counters deterministic;
// times normalized).
func TestExplainAnalyzeWindowGolden(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 2
	info, err := e.ExplainAnalyze("SELECT SUM(A) FROM ts GROUP BY TIME(1024, 512)")
	if err != nil {
		t.Fatal(err)
	}
	want := "window query [ETSQP]\n" +
		"  series: ts\n" +
		"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
		"  fused decoders: true  pruning: false\n" +
		"  window instances: 6\n" +
		"  analyze:\n" +
		"    pages: relevant=3 read=3 pruned=0 stat-answered=0\n" +
		"    slices: 3  tuples loaded: 3072  rows pruned: 0  rows out: 6\n" +
		"    values: fused=3072 decoded=0\n" +
		"    window segments: 6\n" +
		"    bytes scanned: <n>\n" +
		"    elapsed: <t>\n" +
		"    stages: <t>\n" +
		"    resources: <r>\n" +
		"  trace:\n" +
		"    query <t>\n" +
		"      parse <t>\n" +
		"      plan <t>\n" +
		"      prune <t>\n" +
		"      io <t>\n" +
		"      decode <t>\n" +
		"      filter <t>\n" +
		"      agg <t>\n" +
		"      window <t>\n" +
		"      merge <t>\n" +
		"      other <t>\n" +
		"    slices: 3 run, 3 recorded\n" +
		"      slice [0, 1024) rows=1024 fused=true width=0 nv=1 dur=<t>\n" +
		"      slice [0, 1024) rows=1024 fused=true width=0 nv=1 dur=<t>\n" +
		"      slice [0, 1024) rows=1024 fused=true width=4 nv=7 dur=<t>\n"
	if got := normalizeAnalyze(info.String()); got != want {
		t.Errorf("analyze mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// joinStore builds two aligned 8-page series so a LIMIT-bounded join
// has pages left over to *not* read.
func joinStore(t *testing.T) *storage.Store {
	t.Helper()
	const n = 8 * 1024
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1000 + int64(i)
		vals[i] = int64(i % 7)
	}
	st := storage.NewStore()
	for _, name := range []string{"ts1", "ts2"} {
		if err := st.Append(name, ts, vals, storage.Options{PageSize: 1024}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestExplainAnalyzeJoinLimitGolden pins the analyze rendering of a
// LIMIT-bounded natural join: the cursor early-stop must be visible as
// read < relevant and a small batch count.
func TestExplainAnalyzeJoinLimitGolden(t *testing.T) {
	e := New(joinStore(t), ModeETSQP)
	e.Workers = 1
	info, err := e.ExplainAnalyze("SELECT * FROM ts1, ts2 LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	want := "join query [ETSQP]\n" +
		"  series: ts1, ts2\n" +
		"  pages: 8  workers: 1  jobs: 8  sliced: false\n" +
		"  merge ranges: 1\n" +
		"  analyze:\n" +
		"    pages: relevant=16 read=4 pruned=0 stat-answered=0\n" +
		"    slices: 0  tuples loaded: 2048  rows pruned: 0  rows out: 4\n" +
		"    values: fused=0 decoded=2048\n" +
		"    merge ranges: 1\n" +
		"    cursor batches: 2\n" +
		"    bytes scanned: <n>\n" +
		"    elapsed: <t>\n" +
		"    stages: <t>\n" +
		"    resources: <r>\n" +
		"  trace:\n" +
		"    query <t>\n" +
		"      parse <t>\n" +
		"      plan <t>\n" +
		"      prune <t>\n" +
		"      io <t>\n" +
		"      decode <t>\n" +
		"      filter <t>\n" +
		"      agg <t>\n" +
		"      window <t>\n" +
		"      merge <t>\n" +
		"      other <t>\n" +
		"      slice [0, 1024) rows=1024 fused=false dur=<t>\n" +
		"      slice [0, 1024) rows=1024 fused=false dur=<t>\n"
	if got := normalizeAnalyze(info.String()); got != want {
		t.Errorf("analyze mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	st := info.Result.Stats
	if st.PagesRead >= st.PagesTotal {
		t.Errorf("LIMIT did not stop cursors early: read %d of %d pages", st.PagesRead, st.PagesTotal)
	}
}

// zeroDurations blanks every timing- or environment-dependent field of
// a trace in place so its JSON form is byte-stable: span durations, the
// minted trace ID, and the resource fields that vary run to run (CPU
// time; the arena high-water mark depends on what earlier tests left in
// the shared pool's arenas). The deterministic resource counts (morsels,
// pages, bytes) stay pinned.
func zeroDurations(tr *Trace) {
	tr.ElapsedNs = 0
	tr.TraceID = "tid"
	if tr.Resources != nil {
		tr.Resources.CPUNanos = 0
		tr.Resources.ArenaHighWater = 0
	}
	var walk func(*Span)
	walk = func(s *Span) {
		s.DurNs = 0
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	walk(&tr.Root)
	for i := range tr.Slices {
		tr.Slices[i].DurNs = 0
	}
}

// TestTraceJSONWindowJoinGolden pins the trace-JSON schema for windowed
// and joined plans end to end: real queries run single-worker, timings
// zeroed, and the whole document compared byte for byte.
func TestTraceJSONWindowJoinGolden(t *testing.T) {
	t.Run("window", func(t *testing.T) {
		e := New(planStore(t), ModeETSQP)
		e.Workers = 1
		_, tr, err := e.TraceSQL("SELECT SUM(A) FROM ts GROUP BY TIME(1024, 512)")
		if err != nil {
			t.Fatal(err)
		}
		zeroDurations(tr)
		var b strings.Builder
		if err := tr.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		want := `{"query":"SELECT SUM(A) FROM ts GROUP BY TIME(1024, 512)",` +
			`"mode":"ETSQP","workers":1,"elapsed_ns":0,` +
			`"span":{"name":"query","dur_ns":0,"children":[` +
			`{"name":"parse","dur_ns":0},{"name":"plan","dur_ns":0},` +
			`{"name":"prune","dur_ns":0},{"name":"io","dur_ns":0},` +
			`{"name":"decode","dur_ns":0},{"name":"filter","dur_ns":0},` +
			`{"name":"agg","dur_ns":0},{"name":"window","dur_ns":0},` +
			`{"name":"merge","dur_ns":0},{"name":"other","dur_ns":0}]},` +
			`"slices":[` +
			`{"start_row":0,"end_row":1024,"rows":1024,"fused":true,"nv":1,"dur_ns":0},` +
			`{"start_row":0,"end_row":1024,"rows":1024,"fused":true,"nv":1,"dur_ns":0},` +
			`{"start_row":0,"end_row":1024,"rows":1024,"fused":true,"width":4,"nv":7,"dur_ns":0}],` +
			`"slices_total":3,"trace_id":"tid",` +
			`"resources":{"cpu_ns":0,"morsels":3,"steals":0,"pages_read":3,` +
			`"bytes_scanned":665,"values_decoded":0,"cache_hits":0,"cache_misses":0,` +
			`"arena_high_bytes":0}}` + "\n"
		if got := b.String(); got != want {
			t.Errorf("trace JSON mismatch\ngot:  %swant: %s", got, want)
		}
	})
	t.Run("join-limit", func(t *testing.T) {
		e := New(joinStore(t), ModeETSQP)
		e.Workers = 1
		_, tr, err := e.TraceSQL("SELECT * FROM ts1, ts2 LIMIT 4")
		if err != nil {
			t.Fatal(err)
		}
		zeroDurations(tr)
		var b strings.Builder
		if err := tr.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		// The two recorded slice events are the single batch each cursor
		// pulled before the LIMIT stopped the join; slices_total stays 0
		// because cursor batches are not pipeline jobs.
		want := `{"query":"SELECT * FROM ts1, ts2 LIMIT 4",` +
			`"mode":"ETSQP","workers":1,"elapsed_ns":0,` +
			`"span":{"name":"query","dur_ns":0,"children":[` +
			`{"name":"parse","dur_ns":0},{"name":"plan","dur_ns":0},` +
			`{"name":"prune","dur_ns":0},{"name":"io","dur_ns":0},` +
			`{"name":"decode","dur_ns":0},{"name":"filter","dur_ns":0},` +
			`{"name":"agg","dur_ns":0},{"name":"window","dur_ns":0},` +
			`{"name":"merge","dur_ns":0},{"name":"other","dur_ns":0}]},` +
			`"slices":[` +
			`{"start_row":0,"end_row":1024,"rows":1024,"fused":false,"dur_ns":0},` +
			`{"start_row":0,"end_row":1024,"rows":1024,"fused":false,"dur_ns":0}],` +
			`"slices_total":0,"trace_id":"tid",` +
			`"resources":{"cpu_ns":0,"morsels":1,"steals":0,"pages_read":4,` +
			`"bytes_scanned":972,"values_decoded":2048,"cache_hits":0,"cache_misses":0,` +
			`"arena_high_bytes":0}}` + "\n"
		if got := b.String(); got != want {
			t.Errorf("trace JSON mismatch\ngot:  %swant: %s", got, want)
		}
	})
}
