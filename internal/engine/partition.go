package engine

import (
	"etsqp/internal/exec"
	"etsqp/internal/storage"
)

// timeCuts splits [t1, t2] into up to n disjoint contiguous ranges cut
// at page boundaries of the series, so each range can be joined/merged
// by an independent worker and the per-range results concatenate in
// order — the time-range merge nodes of Figure 9.
func timeCuts(ser *storage.Series, t1, t2 int64, n int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	pages := ser.PagesInRange(t1, t2)
	if len(pages) == 0 || n == 1 {
		return [][2]int64{{t1, t2}}
	}
	if n > len(pages) {
		n = len(pages)
	}
	per := len(pages) / n
	cuts := make([][2]int64, 0, n)
	start := t1
	for i := 1; i < n; i++ {
		// The cut sits just before the start of page i*per: ranges stay
		// disjoint and cover [t1, t2] without splitting a timestamp.
		cut := pages[i*per].StartTime() - 1
		if cut < start {
			continue
		}
		if cut >= t2 {
			break
		}
		cuts = append(cuts, [2]int64{start, cut})
		start = cut + 1
	}
	return append(cuts, [2]int64{start, t2})
}

// runRanged executes fn over each time range as one morsel batch on the
// shared worker pool and returns the per-range row groups in range
// order. Each claimed range index is owned by exactly one participant,
// so the results slots stay write-disjoint; a straggler range occupies
// one participant while the rest drain the remainder. The query's
// collector (nil = unattributed) receives the batch's shared-pool
// resource accounting.
func (e *Engine) runRanged(ranges [][2]int64, col *statsCollector, fn func(t1, t2 int64) ([]Row, error)) ([]Row, error) {
	var qs *exec.QueryStats
	if col != nil {
		qs = &col.execStats
	}
	results := make([][]Row, len(ranges))
	err := e.pool().RunWith(qs, len(ranges), e.workers(), func(w *exec.Worker, i int) error {
		rows, err := fn(ranges[i][0], ranges[i][1])
		if err != nil {
			return err
		}
		results[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []Row
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}
