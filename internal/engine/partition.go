package engine

import (
	"sync"
	"sync/atomic"

	"etsqp/internal/storage"
)

// timeCuts splits [t1, t2] into up to n disjoint contiguous ranges cut
// at page boundaries of the series, so each range can be joined/merged
// by an independent worker and the per-range results concatenate in
// order — the time-range merge nodes of Figure 9.
func timeCuts(ser *storage.Series, t1, t2 int64, n int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	pages := ser.PagesInRange(t1, t2)
	if len(pages) == 0 || n == 1 {
		return [][2]int64{{t1, t2}}
	}
	if n > len(pages) {
		n = len(pages)
	}
	per := len(pages) / n
	cuts := make([][2]int64, 0, n)
	start := t1
	for i := 1; i < n; i++ {
		// The cut sits just before the start of page i*per: ranges stay
		// disjoint and cover [t1, t2] without splitting a timestamp.
		cut := pages[i*per].StartTime() - 1
		if cut < start {
			continue
		}
		if cut >= t2 {
			break
		}
		cuts = append(cuts, [2]int64{start, cut})
		start = cut + 1
	}
	return append(cuts, [2]int64{start, t2})
}

// runRanged executes fn over each time range concurrently and returns
// the per-range row groups in range order. At most workers() goroutines
// run, each claiming range indices from a shared counter — a straggler
// range occupies one goroutine while the rest drain the remainder.
// (Each claimed index is written by exactly one goroutine, so the
// results slots stay write-disjoint — the claimed-index pattern
// sharedwrite verifies.)
func (e *Engine) runRanged(ranges [][2]int64, fn func(t1, t2 int64) ([]Row, error)) ([]Row, error) {
	type out struct {
		rows []Row
		err  error
	}
	results := make([]out, len(ranges))
	n := e.workers()
	if n > len(ranges) {
		n = len(ranges)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranges) {
					return
				}
				rows, err := fn(ranges[i][0], ranges[i][1])
				results[i] = out{rows, err}
			}
		}()
	}
	wg.Wait()
	var all []Row
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		all = append(all, r.rows...)
	}
	return all, nil
}
