package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/exec"
	"etsqp/internal/expr"
	"etsqp/internal/fusion"
	"etsqp/internal/obs"
	"etsqp/internal/pipeline"
	"etsqp/internal/prune"
	"etsqp/internal/sqlparse"
	"etsqp/internal/storage"
)

// pruneChunk is the number of rows decoded between Proposition 5 stop
// checks on value-filtered scans.
const pruneChunk = 1024

// ErrOverflow is the Section VI-C aggregate-overflow sentinel. It is the
// fusion package's sentinel re-exported, so a single errors.Is covers
// both detection sites: the fused closed forms (which return it
// directly) and the scalar accumulators (whose sticky flag final()
// wraps around it). Serving layers use it to map overflow to a
// structured client error instead of a generic failure.
var ErrOverflow = fusion.ErrOverflow

// partialAgg is one worker's accumulation state, merged at the merge node.
type partialAgg struct {
	sum      int64
	sumSq    float64
	count    int64
	min      int64
	max      int64
	seen     bool
	overflow bool // Section VI-C: detected, surfaced as an error at final

	// FIRST/LAST tracking: value at the earliest/latest timestamp seen.
	firstT, firstV int64
	lastT, lastV   int64
	hasFL          bool
}

// addCheck adds two int64 detecting overflow — the scalar Section VI-C
// primitive the accumulators below fold through (fusion.addChecked is
// the same shape on the fused side).
//
//etsqp:checked add
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func addCheck(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return s, false
	}
	return s, true
}

// addBoundary folds a slice's boundary rows into the FIRST/LAST state.
//
//etsqp:hotpath
//etsqp:rangecheck
func (p *partialAgg) addBoundary(firstT, firstV, lastT, lastV int64) {
	if !p.hasFL || firstT < p.firstT {
		p.firstT, p.firstV = firstT, firstV
	}
	if !p.hasFL || lastT > p.lastT {
		p.lastT, p.lastV = lastT, lastV
	}
	p.hasFL = true
}

// addValue folds one decoded value into the running aggregate state —
// the per-row accumulator of every non-fused scan.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:rangecheck
func (p *partialAgg) addValue(v int64) {
	s, ok := addCheck(p.sum, v)
	if !ok {
		p.overflow = true
	}
	p.sum = s
	p.sumSq += float64(v) * float64(v)
	var okC bool
	p.count, okC = addCheck(p.count, 1)
	if !okC {
		p.overflow = true
	}
	if !p.seen || v < p.min {
		p.min = v
	}
	if !p.seen || v > p.max {
		p.max = v
	}
	p.seen = true
}

// addSum folds a fused per-block (sum, count) pair.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:rangecheck
func (p *partialAgg) addSum(sum int64, count int64) {
	s, ok := addCheck(p.sum, sum)
	if !ok {
		p.overflow = true
	}
	p.sum = s
	var okC bool
	p.count, okC = addCheck(p.count, count)
	if !okC {
		p.overflow = true
	}
	p.seen = p.seen || count > 0
}

// merge combines a worker's partial into the receiver.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:rangecheck
func (p *partialAgg) merge(o *partialAgg) {
	p.overflow = p.overflow || o.overflow
	s, ok := addCheck(p.sum, o.sum)
	if !ok {
		p.overflow = true
	}
	p.sum = s
	p.sumSq += o.sumSq
	var okC bool
	p.count, okC = addCheck(p.count, o.count)
	if !okC {
		p.overflow = true
	}
	if o.hasFL {
		p.addBoundary(o.firstT, o.firstV, o.lastT, o.lastV)
	}
	if !o.seen {
		return
	}
	if !p.seen {
		p.min, p.max = o.min, o.max
	} else {
		if o.min < p.min {
			p.min = o.min
		}
		if o.max > p.max {
			p.max = o.max
		}
	}
	p.seen = true
}

// final evaluates the aggregate function from the accumulated sums.
func (p *partialAgg) final(agg sqlparse.AggFunc) (float64, error) {
	if p.overflow {
		switch agg {
		case sqlparse.AggSum, sqlparse.AggAvg, sqlparse.AggVar:
			return 0, fmt.Errorf("engine: %s overflow (Section VI-C check): %w", agg, ErrOverflow)
		}
	}
	switch agg {
	case sqlparse.AggCount:
		return float64(p.count), nil
	case sqlparse.AggSum:
		return float64(p.sum), nil
	case sqlparse.AggAvg:
		if p.count == 0 {
			return 0, nil
		}
		return float64(p.sum) / float64(p.count), nil
	case sqlparse.AggMin:
		if !p.seen {
			return 0, fmt.Errorf("engine: MIN over empty input")
		}
		return float64(p.min), nil
	case sqlparse.AggMax:
		if !p.seen {
			return 0, fmt.Errorf("engine: MAX over empty input")
		}
		return float64(p.max), nil
	case sqlparse.AggVar:
		if p.count == 0 {
			return 0, nil
		}
		mean := float64(p.sum) / float64(p.count)
		return p.sumSq/float64(p.count) - mean*mean, nil
	case sqlparse.AggFirst:
		if !p.hasFL {
			return 0, fmt.Errorf("engine: FIRST over empty input")
		}
		return float64(p.firstV), nil
	case sqlparse.AggLast:
		if !p.hasFL {
			return 0, fmt.Errorf("engine: LAST over empty input")
		}
		return float64(p.lastV), nil
	default:
		return 0, fmt.Errorf("engine: unsupported aggregate %q", agg)
	}
}

// needsValues reports whether the aggregate set requires materialized
// values (MIN/MAX/VAR) or can use the fused SUM/COUNT path. FIRST/LAST
// are served by boundary-row decodes, so they stay fused-compatible.
func needsValues(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		switch it.Agg {
		case sqlparse.AggSum, sqlparse.AggAvg, sqlparse.AggCount,
			sqlparse.AggFirst, sqlparse.AggLast:
		default:
			return true
		}
	}
	return false
}

// needsBoundaries reports whether any item is FIRST or LAST.
func needsBoundaries(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Agg == sqlparse.AggFirst || it.Agg == sqlparse.AggLast {
			return true
		}
	}
	return false
}

// executeAgg runs aggregation items over one series (Q1-Q3 shapes).
func (e *Engine) executeAgg(q *sqlparse.Query, series string, preds []sqlparse.Pred, tr *Trace) (*Result, error) {
	for _, it := range q.Items {
		if it.Agg == sqlparse.AggNone {
			return nil, fmt.Errorf("engine: non-aggregate item in aggregation query")
		}
		if it.Col.IsTime() {
			return nil, fmt.Errorf("engine: aggregates over TIME are not supported")
		}
	}
	needFL := needsBoundaries(q.Items)
	if needFL && len(valuePreds(preds)) > 0 {
		return nil, fmt.Errorf("engine: FIRST/LAST with value predicates is not supported")
	}
	if q.Window != nil && len(q.Items) > 1 {
		return nil, fmt.Errorf("engine: sliding-window queries take a single aggregate item")
	}
	ser, ok := e.Store.Series(series)
	if !ok {
		return nil, fmt.Errorf("engine: unknown series %q", series)
	}
	t1, t2 := timeRange(preds)
	vp := valuePreds(preds)
	c1, c2 := valueRange(vp)
	col := newCollector(tr)

	// Page relevance by time (binary-searched index, all modes) and value
	// statistics (ETSQP-prune only). Timed as the trace's prune stage.
	var loaded []storage.PagePair
	pruneStart := time.Now()
	for _, pp := range ser.PagesInRange(t1, t2) {
		col.pagesTotal.Add(1)
		if e.Mode == ModeETSQPPrune && len(vp) > 0 &&
			prune.SkipPageByValue(pp.Value.Header, c1, c2) {
			col.pagesPruned.Add(1)
			col.tuplesLoaded.Add(int64(pp.Count()))
			continue
		}
		loaded = append(loaded, pp)
	}
	col.pruneNanos.Add(int64(time.Since(pruneStart)))

	var windows []expr.Window
	if q.Window != nil {
		var err error
		windows, err = windowInstances(q.Window, ser, t1, t2)
		if err != nil {
			return nil, err
		}
	}

	jobs := e.jobsFor(loaded)
	slices := make([]pipeline.Slice, 0, len(loaded))
	for _, js := range jobs {
		slices = append(slices, js...)
	}
	// fusible: the aggregate set can run on encoded form in this mode;
	// whether a particular slice actually fuses also depends on its page
	// statistics versus the value predicates (see aggSlice).
	fusible := !needsValues(q.Items) && e.Mode != ModeSerial &&
		e.Mode != ModeSBoost && e.Mode != ModeFastLanes
	// Per-slot partials: Worker.Slot is assigned exactly once per batch,
	// so each participant folds into its own cell with no mutex; the
	// merge node runs sequentially after the batch completes (Run's
	// return establishes the happens-before for the slot-local writes).
	par := e.workers()
	locals := make([]partialAgg, par)
	winLocal := make([]partialAgg, par*len(windows))
	nw := len(windows)
	err := e.pool().RunWith(&col.execStats, len(slices), par, func(w *exec.Worker, i int) error {
		var lw []partialAgg
		if nw > 0 {
			lw = winLocal[w.Slot*nw : (w.Slot+1)*nw]
		}
		return e.aggSlice(series, slices[i], t1, t2, vp, c1, c2, fusible, needFL, windows, &locals[w.Slot], lw, col, w.Arena)
	})
	if err != nil {
		return nil, err
	}
	global := &partialAgg{}
	winAgg := make([]partialAgg, len(windows))
	for s := range locals {
		global.merge(&locals[s])
	}
	for s := 0; s < par; s++ {
		for wi := 0; wi < nw; wi++ {
			winAgg[wi].merge(&winLocal[s*nw+wi])
		}
	}

	res := &Result{Stats: col.finish()}
	if q.Window != nil {
		agg := q.Items[0].Agg
		res.Windows = make([]WindowAgg, len(windows))
		for i, w := range windows {
			v, err := winAgg[i].final(agg)
			if err != nil {
				if winAgg[i].overflow {
					return nil, err
				}
				v = 0 // empty window (MIN/MAX have no value)
			}
			res.Windows[i] = WindowAgg{Index: w.Index, Start: w.Start, End: w.End, Value: v, Count: winAgg[i].count}
		}
		return res, nil
	}
	res.Aggregates = make(map[string]float64, len(q.Items))
	for _, it := range q.Items {
		v, err := global.final(it.Agg)
		if err != nil {
			return nil, err
		}
		res.Aggregates[fmt.Sprintf("%s(A)", it.Agg)] = v
	}
	return res, nil
}

// windowInstances enumerates a query's window set over one series. The
// SW form carries its anchor; GROUP BY TIME anchors at the query's time
// lower bound, or the series' first timestamp when unbounded below.
func windowInstances(w *sqlparse.Window, ser *storage.Series, t1, t2 int64) ([]expr.Window, error) {
	seriesStart, seriesEnd := ser.TimeRange()
	if seriesEnd > t2 {
		seriesEnd = t2
	}
	anchor := w.TMin
	if !w.HasTMin {
		anchor = t1
		if t1 <= math.MinInt64+1 {
			anchor = seriesStart
		}
	}
	return expr.SlidingWindowsHop(anchor, w.DT, w.Hop(), seriesEnd)
}

// valueRange extracts conjunctive bounds [c1, c2] from value predicates
// for statistics-based pruning; predicates that are not range-shaped
// leave the bounds open.
func valueRange(vp []sqlparse.Pred) (c1, c2 int64) {
	c1, c2 = -(1 << 62), 1<<62
	for _, p := range vp {
		switch p.Op {
		case opGT:
			if p.Value+1 > c1 {
				c1 = p.Value + 1
			}
		case opGE:
			if p.Value > c1 {
				c1 = p.Value
			}
		case opLT:
			if p.Value-1 < c2 {
				c2 = p.Value - 1
			}
		case opLE:
			if p.Value < c2 {
				c2 = p.Value
			}
		case opEQ:
			if p.Value > c1 {
				c1 = p.Value
			}
			if p.Value < c2 {
				c2 = p.Value
			}
		}
	}
	return c1, c2
}

// aggSlice processes one pipeline job: find the time-valid row range,
// then aggregate values over it (fused or decoded). arena is the
// executing participant's scratch space (nil falls back to allocating).
func (e *Engine) aggSlice(ser string, sl pipeline.Slice, t1, t2 int64, vp []sqlparse.Pred, c1, c2 int64,
	fusible, needFL bool, windows []expr.Window, local *partialAgg, localWin []partialAgg,
	col *statsCollector, arena *exec.Arena) error {
	col.slicesRun.Add(1)
	col.tuplesLoaded.Add(int64(sl.Rows()))
	obs.EngineHistSliceRows.Observe(int64(sl.Rows()))

	fused := fusible && len(vp) == 0
	if !fused && fusible && rangeOnly(vp) &&
		prune.AllValuesInRange(sl.Pair.Value.Header, c1, c2) {
		// The page's min/max statistics prove every row satisfies the
		// range filter, so the predicate is vacuous here and the fused
		// no-materialization path stays available despite it (the
		// Section V statistics reused to keep Section IV fusion on).
		fused = true
		if sl.StartRow == 0 {
			obs.PrunePagesVacuous.Inc()
		}
	}

	// Per-slice trace event: row window, fusion decision, and the
	// Proposition 1 n_v the decode plan picks for this page's packing
	// width. Tracing off is a single nil check.
	if col.trace != nil {
		ev := SliceEvent{StartRow: sl.StartRow, EndRow: sl.EndRow, Rows: sl.Rows(), Fused: fused}
		if blk, berr := pageBlock(sl.Pair.Value); berr == nil && blk != nil {
			ev.Width = blk.Width
			ev.Nv = pipeline.ChooseNv(blk.Width, 32)
		}
		sliceStart := time.Now()
		defer func() {
			ev.DurNs = int64(time.Since(sliceStart))
			col.trace.addSlice(ev)
		}()
	}

	// Resolve the time-valid row range [lo, hi) within the slice.
	lo, hi := sl.StartRow, sl.EndRow
	var ts []int64 // decoded timestamps, when needed
	if interval, ok := e.constantIntervalOf(sl.Pair.Time); ok {
		// Proposition 4 constant-interval special case: positions come
		// from arithmetic, no timestamp decoding at all.
		first := sl.Pair.Time.Header.StartTime
		plo, phi := prune.PositionsForConstantInterval(first, interval, sl.Pair.Count(), t1, t2)
		if plo > lo {
			lo = plo
		}
		if phi < hi {
			hi = phi
		}
	} else if rlo, rhi, ok, err := e.timeBoundsPruned(sl, t1, t2, windows, col, arena); ok || err != nil {
		// Proposition 4: the time column scan stopped as soon as the
		// sorted timestamps passed t2 — the tail was never decoded.
		if err != nil {
			return err
		}
		lo, hi = rlo, rhi
	} else {
		var err error
		ts, err = e.decodeColumnRange(ser, sl.Pair.Time, sl.StartRow, sl.EndRow, col)
		if err != nil {
			return err
		}
		rlo, rhi := expr.TimeRangeBounds(ts, t1, t2)
		lo, hi = sl.StartRow+rlo, sl.StartRow+rhi
	}
	if lo >= hi {
		return nil
	}

	if len(windows) > 0 {
		return e.aggWindows(ser, sl, lo, hi, ts, vp, c1, c2, fused, needFL, windows, localWin, col, arena)
	}

	if needFL {
		if err := e.addBoundaries(ser, sl, lo, hi, ts, local, col); err != nil {
			return err
		}
	}

	// Statistics-level answer: a fully-covered page with a valid header
	// sum needs no payload access at all.
	if fused && e.UseHeaderStats && !needFL &&
		sl.StartRow == 0 && sl.EndRow == sl.Pair.Count() &&
		lo == sl.StartRow && hi == sl.EndRow && sl.Pair.Value.Header.SumValid {
		local.addSum(sl.Pair.Value.Header.SumValue, int64(hi-lo))
		col.statAnswered.Add(1)
		return nil
	}

	// Fused SUM/COUNT path: no value materialization (Section IV).
	if fused {
		return timed(&col.aggNanos, func() error {
			sum, count, ok, err := e.fusedSumRange(sl.Pair.Value, lo, hi, col)
			if err != nil {
				return err
			}
			if ok {
				col.valuesFused.Add(count)
				local.addSum(sum, count)
				return nil
			}
			vals, err := e.decodeColumnRange(ser, sl.Pair.Value, lo, hi, col)
			if err != nil {
				return err
			}
			col.valuesDecoded.Add(int64(len(vals)))
			for _, v := range vals {
				local.addValue(v)
			}
			return nil
		})
	}

	// General path: decode values (chunked when pruning), filter, fold.
	return e.aggDecodedRange(ser, sl, lo, hi, vp, c1, c2, local, col, arena)
}

// arenaInt64 borrows scratch from the participant's arena, falling back
// to an allocation on the arena-less paths (serial callers, tests).
func arenaInt64(a *exec.Arena, class, n int) []int64 {
	if a != nil {
		return a.Int64(class, n)
	}
	return make([]int64, n)
}

// timeBoundsPruned resolves the time-valid row range of a slice with a
// streaming scan that stops once the sorted timestamps pass t2
// (Proposition 4's early termination on the time filter). It only
// applies in prune mode over order-1-scannable time pages without
// windows (windows need the full timestamp column for boundaries).
func (e *Engine) timeBoundsPruned(sl pipeline.Slice, t1, t2 int64,
	windows []expr.Window, col *statsCollector, arena *exec.Arena) (lo, hi int, ok bool, err error) {
	if e.Mode != ModeETSQPPrune || len(windows) > 0 {
		return 0, 0, false, nil
	}
	if sl.Pair.Time.Header.EndTime <= t2 {
		return 0, 0, false, nil // nothing to cut; full decode is optimal
	}
	blk, berr := pageBlock(sl.Pair.Time)
	if berr != nil || blk == nil {
		return 0, 0, false, nil
	}
	scanner, serr := pipeline.NewRangeScanner(blk, sl.StartRow)
	if serr != nil {
		return 0, 0, false, nil // e.g. order-2 time pages
	}
	col.pagesRead.Add(1)
	col.bytesScanned.Add(int64(len(sl.Pair.Time.Data)))
	if cerr := sl.Pair.Time.VerifyChecksum(); cerr != nil {
		return 0, 0, true, cerr
	}
	lo, hi = -1, sl.StartRow
	buf := arenaInt64(arena, exec.ClassPrune, pruneChunk)
	err = timed(&col.decodeNanos, func() error {
		for scanner.Row() < sl.EndRow {
			want := sl.EndRow - scanner.Row()
			if want > pruneChunk {
				want = pruneChunk
			}
			base := scanner.Row()
			k, derr := scanner.Next(buf[:want])
			if derr != nil {
				return derr
			}
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				t := buf[i]
				if lo < 0 && t >= t1 {
					lo = base + i
				}
				if t > t2 {
					col.rowsPruned.Add(int64(sl.EndRow - (base + i)))
					obs.PruneStopsTime.Inc()
					hi = base + i
					return nil
				}
			}
			hi = base + k
		}
		return nil
	})
	if err != nil {
		return 0, 0, true, err
	}
	if lo < 0 {
		lo = hi // no row reached t1
	}
	return lo, hi, true, nil
}

// fusedSumRange returns the sum and count over rows [lo, hi) of a value
// page without materializing values; ok is false when the codec has no
// fused path. Page loading is charged to the IO stage like the decoding
// paths.
//
// A fusion.ErrOverflow from the closed forms is reported as ok=false,
// not as a failure: the fused polynomials can overflow on intermediates
// (n·cur, Δ²·Σi²) even when the decoded fold stays in range, and the
// decoded fallback re-detects any genuine overflow exactly via the
// checked accumulators — COUNT/MIN/MAX over the same rows then still
// answer while SUM/AVG/VAR surface the Section VI-C error from final().
func (e *Engine) fusedSumRange(p *storage.Page, lo, hi int, col *statsCollector) (sum int64, count int64, ok bool, err error) {
	data, release := loadPage(p, col)
	defer release()
	if err := p.VerifyChecksum(); err != nil {
		return 0, 0, false, err
	}
	if first, pairs, isRLBE := deltaRunsOfData(p.Header.Codec, data); isRLBE {
		s, err := fusion.SumRange(first, pairs, lo, hi)
		if err != nil {
			if errors.Is(err, fusion.ErrOverflow) {
				return 0, 0, false, nil
			}
			return 0, 0, false, err
		}
		return s, int64(hi - lo), true, nil
	}
	blk, err := pageBlockData(p.Header.Codec, data)
	if err != nil || blk == nil {
		return 0, 0, false, err
	}
	s, err := fusion.SumBlockRange(blk, lo, hi)
	if err != nil {
		if errors.Is(err, fusion.ErrOverflow) {
			return 0, 0, false, nil
		}
		return 0, 0, false, err
	}
	return s, int64(hi - lo), true, nil
}

// aggDecodedRange decodes rows [lo, hi), applies value predicates, and
// folds into the partial aggregate. In prune mode the decode streams in
// chunks through a RangeScanner with Proposition 5 stop checks between
// them; otherwise a single range decode covers the rows.
func (e *Engine) aggDecodedRange(ser string, sl pipeline.Slice, lo, hi int, vp []sqlparse.Pred,
	c1, c2 int64, local *partialAgg, col *statsCollector, arena *exec.Arena) error {
	usePrune := e.Mode == ModeETSQPPrune && len(vp) > 0
	if usePrune {
		if blk, err := pageBlock(sl.Pair.Value); err == nil && blk != nil {
			col.pagesRead.Add(1)
			col.bytesScanned.Add(int64(len(sl.Pair.Value.Data)))
			if done, err := e.aggPrunedScan(sl, blk, lo, hi, vp, c1, c2, local, col, arena); done || err != nil {
				return err
			}
		}
	}
	vals, err := e.decodeColumnRange(ser, sl.Pair.Value, lo, hi, col)
	if err != nil {
		return err
	}
	col.valuesDecoded.Add(int64(len(vals)))
	return timed(&col.aggNanos, func() error {
		foldValues(vals, vp, c1, c2, local)
		return nil
	})
}

// aggPrunedScan streams the value column through a RangeScanner,
// stopping as soon as the Proposition 5 bounds show nothing ahead can
// satisfy the filter. done reports whether the rows were fully handled.
func (e *Engine) aggPrunedScan(sl pipeline.Slice, blk *ts2diff.Block, lo, hi int,
	vp []sqlparse.Pred, c1, c2 int64, local *partialAgg, col *statsCollector, arena *exec.Arena) (bool, error) {
	bounds := prune.BoundsFromBlock(blk)
	scanner, err := pipeline.NewRangeScanner(blk, lo)
	if err != nil {
		return false, nil // unsupported shape; caller falls back
	}
	if err := sl.Pair.Value.VerifyChecksum(); err != nil {
		return true, err
	}
	start := time.Now()
	defer func() {
		if obs.Enabled() {
			obs.EngineHistPageDecode.Observe(int64(time.Since(start)))
		}
	}()
	n := sl.Pair.Count()
	buf := arenaInt64(arena, exec.ClassPrune, pruneChunk)
	for scanner.Row() < hi {
		want := hi - scanner.Row()
		if want > pruneChunk {
			want = pruneChunk
		}
		var k int
		err := timed(&col.decodeNanos, func() error {
			var derr error
			k, derr = scanner.Next(buf[:want])
			return derr
		})
		if err != nil {
			return true, err
		}
		if k == 0 {
			break
		}
		vals := buf[:k]
		col.valuesDecoded.Add(int64(k))
		err = timed(&col.aggNanos, func() error {
			foldValues(vals, vp, c1, c2, local)
			return nil
		})
		if err != nil {
			return true, err
		}
		row := scanner.Row()
		if row < hi && bounds.StopValue(vals[k-1], row-1, n, c1, c2) {
			col.rowsPruned.Add(int64(hi - row))
			break
		}
	}
	return true, nil
}

// foldValues applies the predicates and accumulates matches, taking the
// vectorized mask path for pure range predicates.
func foldValues(vals []int64, vp []sqlparse.Pred, c1, c2 int64, local *partialAgg) {
	if rangeOnly(vp) {
		m := expr.RangeMask(vals, c1, c2)
		expr.MaskedFold(vals, m, local.addValue)
		return
	}
	for _, v := range vals {
		if predsMatch(vp, v) {
			local.addValue(v)
		}
	}
}

// rangeOnly reports whether the predicate conjunction is exactly the
// range [c1, c2] that valueRange extracted (no != predicates).
func rangeOnly(vp []sqlparse.Pred) bool {
	for _, p := range vp {
		if p.Op == opNE {
			return false
		}
	}
	return len(vp) > 0
}

// predsMatch evaluates the predicate conjunction against one value.
//
//etsqp:hotpath
func predsMatch(vp []sqlparse.Pred, v int64) bool {
	for _, p := range vp {
		if !p.Op.Eval(v, p.Value) {
			return false
		}
	}
	return true
}

// addBoundaries decodes only the first and last valid rows of a slice
// and folds them into the FIRST/LAST state — the fused-compatible path
// for boundary aggregates.
func (e *Engine) addBoundaries(ser string, sl pipeline.Slice, lo, hi int, ts []int64,
	p *partialAgg, col *statsCollector) error {
	rowTime := e.rowTimeFunc(sl, ts)
	fv, err := e.decodeColumnRange(ser, sl.Pair.Value, lo, lo+1, col)
	if err != nil {
		return err
	}
	lv, err := e.decodeColumnRange(ser, sl.Pair.Value, hi-1, hi, col)
	if err != nil {
		return err
	}
	p.addBoundary(rowTime(lo), fv[0], rowTime(hi-1), lv[0])
	return nil
}

// rowTimeFunc maps an absolute row index to its timestamp, from decoded
// timestamps when available or constant-interval arithmetic otherwise.
func (e *Engine) rowTimeFunc(sl pipeline.Slice, ts []int64) func(i int) int64 {
	if ts != nil {
		start := sl.StartRow
		return func(i int) int64 { return ts[i-start] }
	}
	interval, _ := e.constantIntervalOf(sl.Pair.Time)
	first := sl.Pair.Time.Header.StartTime
	return func(i int) int64 { return first + int64(i)*interval }
}

// aggWindows folds rows [lo, hi) into per-window partials with one pass
// over the slice: the boundaries of every intersecting window cut the
// row range into disjoint segments, a single segment pass fills all
// per-segment partials (on encoded form via the Proposition 3 closed
// forms when fused), and each window then merges its contiguous segment
// run. Overlapping windows (slide < width) thus share the decode and
// the page parse instead of re-scanning per window — the incremental
// evaluation of Section VI's G_sw. Window boundaries map to rows via
// the decoded timestamps or constant-interval arithmetic.
func (e *Engine) aggWindows(ser string, sl pipeline.Slice, lo, hi int, ts []int64,
	vp []sqlparse.Pred, c1, c2 int64,
	fused, needFL bool, windows []expr.Window, localWin []partialAgg,
	col *statsCollector, arena *exec.Arena) error {
	rowTime := e.rowTimeFunc(sl, ts)
	tLo, tHi := rowTime(lo), rowTime(hi-1)
	// Windows intersecting [tLo, tHi]: starts are sorted, so the
	// intersecting set is one contiguous index range.
	wFirst := sort.Search(len(windows), func(i int) bool { return windows[i].End > tLo })
	wLast := wFirst
	for wLast < len(windows) && windows[wLast].Start <= tHi {
		wLast++
	}
	if wFirst == wLast {
		return nil
	}
	rowOf := func(t int64) int {
		return lo + sort.Search(hi-lo, func(i int) bool { return rowTime(lo+i) >= t })
	}
	// Per-window row ranges and the merged, deduplicated cut set.
	nw := wLast - wFirst
	winLo := make([]int, nw)
	winHi := make([]int, nw)
	cuts := make([]int, 0, 2*nw)
	for k := 0; k < nw; k++ {
		w := windows[wFirst+k]
		winLo[k] = rowOf(w.Start)
		winHi[k] = rowOf(w.End)
		cuts = append(cuts, winLo[k], winHi[k])
	}
	sort.Ints(cuts)
	uniq := cuts[:1]
	for _, c := range cuts[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	cuts = uniq
	nseg := len(cuts) - 1
	if nseg <= 0 {
		return nil
	}
	col.windowSegments.Add(int64(nseg))
	segAt := func(row int) int { return sort.SearchInts(cuts, row) }

	if needFL {
		// Boundary rows are per-window by definition; they cost two
		// single-row decodes each regardless of overlap.
		for k := 0; k < nw; k++ {
			if winLo[k] >= winHi[k] {
				continue
			}
			if err := e.addBoundaries(ser, sl, winLo[k], winHi[k], ts, &localWin[wFirst+k], col); err != nil {
				return err
			}
		}
	}

	mergeSegs := func(fold func(k, s int)) {
		for k := 0; k < nw; k++ {
			for s, sEnd := segAt(winLo[k]), segAt(winHi[k]); s < sEnd; s++ {
				fold(k, s)
			}
		}
	}

	if fused {
		handled := false
		err := timed(&col.windowNanos, func() error {
			sums := arenaInt64(arena, exec.ClassScratch, nseg)
			ok, err := e.fusedSumSegments(sl.Pair.Value, cuts, sums, col)
			if err != nil || !ok {
				return err // !ok falls through to the decoded pass
			}
			handled = true
			for s := 0; s < nseg; s++ {
				col.valuesFused.Add(int64(cuts[s+1] - cuts[s]))
			}
			mergeSegs(func(k, s int) {
				localWin[wFirst+k].addSum(sums[s], int64(cuts[s+1]-cuts[s]))
			})
			return nil
		})
		if err != nil || handled {
			return err
		}
	}

	// Decoded pass (also the fused fallback): materialize the covered
	// rows once, build per-segment partials, merge each window's run.
	vals, err := e.decodeColumnRange(ser, sl.Pair.Value, cuts[0], cuts[nseg], col)
	if err != nil {
		return err
	}
	col.valuesDecoded.Add(int64(len(vals)))
	return timed(&col.windowNanos, func() error {
		segAgg := make([]partialAgg, nseg)
		for s := 0; s < nseg; s++ {
			foldValues(vals[cuts[s]-cuts[0]:cuts[s+1]-cuts[0]], vp, c1, c2, &segAgg[s])
		}
		mergeSegs(func(k, s int) {
			localWin[wFirst+k].merge(&segAgg[s])
		})
		return nil
	})
}

// fusedSumSegments fills per-segment sums over the cut partition of a
// value page without materializing values. The page is loaded, verified,
// and parsed once no matter how many windows cut it; ok is false when
// the codec has no fused segment path. Like fusedSumRange, a
// fusion.ErrOverflow demotes to ok=false so the decoded segment pass
// re-evaluates under the exact checked accumulators.
func (e *Engine) fusedSumSegments(p *storage.Page, cuts []int, sums []int64, col *statsCollector) (ok bool, err error) {
	data, release := loadPage(p, col)
	defer release()
	if err := p.VerifyChecksum(); err != nil {
		return false, err
	}
	if first, pairs, isRLBE := deltaRunsOfData(p.Header.Codec, data); isRLBE {
		if err := fusion.SumRangeSegments(first, pairs, cuts, sums); err != nil {
			if errors.Is(err, fusion.ErrOverflow) {
				return false, nil
			}
			return false, err
		}
		return true, nil
	}
	blk, berr := pageBlockData(p.Header.Codec, data)
	if berr != nil || blk == nil {
		return false, berr
	}
	if err := fusion.SumBlockSegments(blk, cuts, sums); err != nil {
		if errors.Is(err, fusion.ErrOverflow) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}
