package engine

import (
	"fmt"
	"strings"

	"etsqp/internal/sqlparse"
)

// PlanInfo describes how a query would execute without running it — the
// pipeline jobs Algorithm 2 would emit.
type PlanInfo struct {
	Mode        string
	Shape       string // "aggregate", "window", "scan", "merge", "join"
	Series      []string
	Pages       int
	Workers     int
	Jobs        int  // pipeline jobs (pages or slices)
	Sliced      bool // any page split into slices
	Fused       bool // aggregation fuses with decoders (Section IV)
	Pruning     bool // Section V rules active
	Windows     int  // sliding-window instances
	MergeRanges int  // time-range merge nodes (Figure 9)
}

// String renders the plan as an indented tree.
func (p *PlanInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s query [%s]\n", p.Shape, p.Mode)
	fmt.Fprintf(&b, "  series: %s\n", strings.Join(p.Series, ", "))
	fmt.Fprintf(&b, "  pages: %d  workers: %d  jobs: %d  sliced: %v\n",
		p.Pages, p.Workers, p.Jobs, p.Sliced)
	if p.Shape == "aggregate" || p.Shape == "window" {
		fmt.Fprintf(&b, "  fused decoders: %v  pruning: %v\n", p.Fused, p.Pruning)
	}
	if p.Windows > 0 {
		fmt.Fprintf(&b, "  window instances: %d\n", p.Windows)
	}
	if p.MergeRanges > 0 {
		fmt.Fprintf(&b, "  merge ranges: %d\n", p.MergeRanges)
	}
	return b.String()
}

// Explain builds the execution plan for a statement without running it.
func (e *Engine) Explain(sql string) (*PlanInfo, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.explainQuery(q)
}

func (e *Engine) explainQuery(q *sqlparse.Query) (*PlanInfo, error) {
	if q.Sub != nil {
		inner := *q
		inner.Sub = nil
		inner.Series = q.Sub.Series
		inner.Preds = append(append([]sqlparse.Pred(nil), q.Sub.Preds...), q.Preds...)
		return e.explainQuery(&inner)
	}
	info := &PlanInfo{Mode: e.Mode.String(), Workers: e.workers()}
	switch {
	case q.UnionWith != "":
		info.Shape = "merge"
		info.Series = []string{q.Series[0], q.UnionWith}
	case len(q.Series) == 2:
		info.Shape = "join"
		info.Series = q.Series
	case len(q.Series) == 1 && q.Items[0].Star:
		info.Shape = "scan"
		info.Series = q.Series
	case len(q.Series) == 1:
		info.Shape = "aggregate"
		if q.Window != nil {
			info.Shape = "window"
		}
		info.Series = q.Series
	default:
		return nil, fmt.Errorf("engine: unsupported query shape")
	}
	ser, ok := e.Store.Series(info.Series[0])
	if !ok {
		return nil, fmt.Errorf("engine: unknown series %q", info.Series[0])
	}
	t1, t2 := timeRange(q.Preds)
	pages := ser.PagesInRange(t1, t2)
	info.Pages = len(pages)
	jobs := e.jobsFor(pages)
	for _, js := range jobs {
		info.Jobs += len(js)
		for _, sl := range js {
			if sl.StartRow > 0 || sl.EndRow < sl.Pair.Count() {
				info.Sliced = true
			}
		}
	}
	vp := valuePreds(q.Preds)
	info.Fused = !needsValues(q.Items) && len(vp) == 0 &&
		e.Mode != ModeSerial && e.Mode != ModeSBoost && e.Mode != ModeFastLanes &&
		(info.Shape == "aggregate" || info.Shape == "window")
	info.Pruning = e.Mode == ModeETSQPPrune && len(vp) > 0
	if q.Window != nil {
		ws, err := windowInstances(q.Window, ser, t1, t2)
		if err != nil {
			return nil, err
		}
		info.Windows = len(ws)
	}
	if info.Shape == "merge" || info.Shape == "join" {
		info.MergeRanges = len(timeCuts(ser, t1, t2, e.workers()))
	}
	return info, nil
}
