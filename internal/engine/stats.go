package engine

import (
	"sync/atomic"
	"time"

	"etsqp/internal/exec"
	"etsqp/internal/expr"
	"etsqp/internal/obs"
)

// Aliases keep predicate handling terse.
const (
	opLT = expr.OpLT
	opLE = expr.OpLE
	opGT = expr.OpGT
	opGE = expr.OpGE
	opEQ = expr.OpEQ
	opNE = expr.OpNE
)

// Stats counts the work a query performed. The throughput metric of the
// evaluation is TuplesLoaded per second, where TuplesLoaded counts the
// tuples of loaded pages *including* pruned pages and slices (Section
// VII-B). EXPLAIN ANALYZE renders these observed numbers next to the
// pre-execution estimates; docs/OBSERVABILITY.md documents the exact
// semantics of each field.
type Stats struct {
	PagesTotal   int64 // pages relevant to the query
	PagesPruned  int64 // pages skipped by header statistics
	SlicesRun    int64 // pipeline jobs executed
	TuplesLoaded int64 // tuples covered by loaded (or pruned) pages
	RowsPruned   int64 // rows skipped by in-page stop rules
	StatAnswered int64 // pages answered from header statistics alone

	PagesRead     int64 // page payload loads (a failed fused attempt re-reads)
	BytesScanned  int64 // encoded payload bytes moved into worker buffers
	ValuesFused   int64 // values aggregated on encoded form (Section IV)
	ValuesDecoded int64 // values materialized for filtering/aggregation
	MergeRanges   int64 // time-range merge nodes executed (Figure 9)
	CacheHits     int64 // page-column decodes served by the decoded-page cache
	CacheMisses   int64 // cache lookups that fell through to the decode path

	// Windowed-aggregation sharing (Section VI G_sw): segments are the
	// disjoint row ranges the window boundaries cut slices into; each is
	// aggregated once and shared by every window covering it.
	WindowSegments int64
	CursorBatches  int64 // columnar batches yielded by storage cursors

	// Stage timings for the Figure 14(b) breakdown (nanoseconds).
	IONanos     int64
	DecodeNanos int64
	FilterNanos int64
	AggNanos    int64
	WindowNanos int64 // per-window partial fills and segment merges
	MergeNanos  int64
	PruneNanos  int64 // page selection + header-statistics pruning

	// Shared-pool resource attribution (exec.QueryStats): worker CPU time
	// summed over the query's morsel executions (exceeds wall time on
	// parallel queries by design), morsels run and stolen on its behalf,
	// and the largest scratch-arena footprint any participant held.
	CPUNanos       int64
	MorselsRun     int64
	MorselsStolen  int64
	ArenaHighWater int64 // bytes
}

// statsCollector accumulates Stats from concurrent workers.
type statsCollector struct {
	pagesTotal   atomic.Int64 //etsqp:atomic
	pagesPruned  atomic.Int64 //etsqp:atomic
	slicesRun    atomic.Int64 //etsqp:atomic
	tuplesLoaded atomic.Int64 //etsqp:atomic
	rowsPruned   atomic.Int64 //etsqp:atomic
	statAnswered atomic.Int64 //etsqp:atomic

	pagesRead     atomic.Int64 //etsqp:atomic
	bytesScanned  atomic.Int64 //etsqp:atomic
	valuesFused   atomic.Int64 //etsqp:atomic
	valuesDecoded atomic.Int64 //etsqp:atomic
	mergeRanges   atomic.Int64 //etsqp:atomic
	cacheHits     atomic.Int64 //etsqp:atomic
	cacheMisses   atomic.Int64 //etsqp:atomic

	windowSegments atomic.Int64 //etsqp:atomic
	cursorBatches  atomic.Int64 //etsqp:atomic

	ioNanos     atomic.Int64 //etsqp:atomic
	decodeNanos atomic.Int64 //etsqp:atomic
	filterNanos atomic.Int64 //etsqp:atomic
	aggNanos    atomic.Int64 //etsqp:atomic
	windowNanos atomic.Int64 //etsqp:atomic
	mergeNanos  atomic.Int64 //etsqp:atomic
	pruneNanos  atomic.Int64 //etsqp:atomic

	// execStats is the query's shared-pool attribution sink, passed to
	// Pool.RunWith by every batch the query submits. Embedded by value so
	// per-query accounting adds no allocation beyond the collector that
	// already exists (TestQueryStatsZeroAllocSteadyState).
	execStats exec.QueryStats

	// trace, when non-nil, receives per-slice events. Hot paths only ever
	// perform a nil check on it, so tracing off adds no work and no
	// allocation.
	trace *Trace
}

// newCollector builds a collector feeding the given trace (nil = off).
func newCollector(tr *Trace) *statsCollector {
	return &statsCollector{trace: tr}
}

func (c *statsCollector) snapshot() Stats {
	return Stats{
		PagesTotal:   c.pagesTotal.Load(),
		PagesPruned:  c.pagesPruned.Load(),
		SlicesRun:    c.slicesRun.Load(),
		TuplesLoaded: c.tuplesLoaded.Load(),
		RowsPruned:   c.rowsPruned.Load(),
		StatAnswered: c.statAnswered.Load(),

		PagesRead:     c.pagesRead.Load(),
		BytesScanned:  c.bytesScanned.Load(),
		ValuesFused:   c.valuesFused.Load(),
		ValuesDecoded: c.valuesDecoded.Load(),
		MergeRanges:   c.mergeRanges.Load(),
		CacheHits:     c.cacheHits.Load(),
		CacheMisses:   c.cacheMisses.Load(),

		WindowSegments: c.windowSegments.Load(),
		CursorBatches:  c.cursorBatches.Load(),

		IONanos:     c.ioNanos.Load(),
		DecodeNanos: c.decodeNanos.Load(),
		FilterNanos: c.filterNanos.Load(),
		AggNanos:    c.aggNanos.Load(),
		WindowNanos: c.windowNanos.Load(),
		MergeNanos:  c.mergeNanos.Load(),
		PruneNanos:  c.pruneNanos.Load(),

		CPUNanos:       c.execStats.CPUNanos(),
		MorselsRun:     c.execStats.Morsels(),
		MorselsStolen:  c.execStats.Steals(),
		ArenaHighWater: c.execStats.ArenaHighWater(),
	}
}

// finish snapshots the collector and publishes the per-query totals to
// the global obs counters in one batch — the hot path only ever touches
// the collector's atomics; the obs layer is charged once per query.
func (c *statsCollector) finish() Stats {
	st := c.snapshot()
	if obs.Enabled() {
		obs.EngineTuplesLoaded.Add(st.TuplesLoaded)
		obs.EngineSlicesRun.Add(st.SlicesRun)
		obs.EngineValuesFused.Add(st.ValuesFused)
		obs.EngineValuesDecoded.Add(st.ValuesDecoded)
		obs.EnginePagesStatAnswered.Add(st.StatAnswered)
		obs.EngineMergeRanges.Add(st.MergeRanges)
		obs.EngineWindowSegments.Add(st.WindowSegments)
		obs.EngineCursorBatches.Add(st.CursorBatches)
		obs.PruneRowsSkipped.Add(st.RowsPruned)
		obs.StoragePagesRead.Add(st.PagesRead)
		obs.StorageBytesScanned.Add(st.BytesScanned)
		obs.EngineTimeIO.AddNanos(st.IONanos)
		obs.EngineTimeDecode.AddNanos(st.DecodeNanos)
		obs.EngineTimeFilter.AddNanos(st.FilterNanos)
		obs.EngineTimeAgg.AddNanos(st.AggNanos)
		obs.EngineTimeWindow.AddNanos(st.WindowNanos)
		obs.EngineTimeMerge.AddNanos(st.MergeNanos)
		obs.EngineTimePrune.AddNanos(st.PruneNanos)
		// The stage histograms observe one value per query — the query's
		// summed stage time — so they hold cross-query distributions.
		obs.EngineHistIO.Observe(st.IONanos)
		obs.EngineHistDecode.Observe(st.DecodeNanos)
		obs.EngineHistFilter.Observe(st.FilterNanos)
		obs.EngineHistAgg.Observe(st.AggNanos)
		obs.EngineHistWindow.Observe(st.WindowNanos)
		obs.EngineHistMerge.Observe(st.MergeNanos)
	}
	return st
}

// timed runs f and adds its wall time to the counter.
func timed(counter *atomic.Int64, f func() error) error {
	start := time.Now()
	err := f()
	counter.Add(int64(time.Since(start)))
	return err
}
