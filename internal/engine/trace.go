package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceSlices bounds the per-slice events a trace retains, so tracing
// a query over a huge store cannot grow memory without bound. The count
// of executed slices is always exact (Stats.SlicesRun); only the
// per-slice detail is capped.
const maxTraceSlices = 256

// Span is one node of a query's span tree. Durations are nanoseconds;
// stage spans are summed across workers, so on parallel queries a stage
// span can exceed its parent's wall time (the same convention as the
// engine.time.* metrics). Field order is part of the JSON schema pinned
// by TestTraceJSONGolden — append, never reorder.
type Span struct {
	Name     string `json:"name"`
	DurNs    int64  `json:"dur_ns"`
	Children []Span `json:"children,omitempty"`
}

// SliceEvent records one executed pipeline job: its row window, whether
// it aggregated on encoded form, and — for TS2DIFF pages — the packing
// width and the Proposition 1 vector count n_v the decode plan chose.
type SliceEvent struct {
	StartRow int   `json:"start_row"`
	EndRow   int   `json:"end_row"`
	Rows     int   `json:"rows"`
	Fused    bool  `json:"fused"`
	Width    uint  `json:"width,omitempty"`
	Nv       int   `json:"nv,omitempty"`
	DurNs    int64 `json:"dur_ns"`
}

// Trace is the per-query span tree the engine assembles when tracing is
// requested: parse → plan → prune → io → decode → filter → agg →
// window → merge stage spans under a query root, plus per-slice events. A nil *Trace
// disables tracing entirely; the execution hot paths only ever perform a
// nil check, so tracing off costs nothing and allocates nothing
// (TestParallelExecutorAllocs budgets are unchanged).
type Trace struct {
	Query     string       `json:"query"`
	Mode      string       `json:"mode"`
	Workers   int          `json:"workers"`
	ElapsedNs int64        `json:"elapsed_ns"`
	Root      Span         `json:"span"`
	Slices    []SliceEvent `json:"slices,omitempty"`
	// SlicesTotal counts every executed job, including those beyond the
	// retained-event cap.
	SlicesTotal int64 `json:"slices_total"`
	// Error records why the query produced no result (empty on success),
	// so a slow-query log line for a failed query — e.g. a Section VI-C
	// aggregate overflow — still explains itself. Appended to the schema;
	// omitted when empty, so successful-trace goldens are unchanged.
	Error string `json:"error,omitempty"`
	// TraceID is a process-unique identifier stamped on the engine's
	// latency-histogram exemplar, so a /metrics bucket links back to the
	// matching slow-query-log line. Appended to the schema.
	TraceID string `json:"trace_id,omitempty"`
	// Resources attributes shared-pool and storage consumption to this
	// query (nil when execution recorded none). Appended to the schema.
	Resources *TraceResources `json:"resources,omitempty"`

	parseNs int64
	planNs  int64
	mu      sync.Mutex
}

// TraceResources is the per-query resource-attribution block of a trace:
// what the query cost the shared pool and the storage layer, as opposed
// to how long its stages took. CPUNanos sums per-morsel wall time across
// participants, so it exceeds ElapsedNs on parallel queries by design.
type TraceResources struct {
	CPUNanos       int64 `json:"cpu_ns"`
	Morsels        int64 `json:"morsels"`
	Steals         int64 `json:"steals"`
	PagesRead      int64 `json:"pages_read"`
	BytesScanned   int64 `json:"bytes_scanned"`
	ValuesDecoded  int64 `json:"values_decoded"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	ArenaHighWater int64 `json:"arena_high_bytes"`
}

// traceIDSeq and traceIDSalt make trace IDs process-unique without
// coordination: a per-process random-ish salt (start time) mixed with an
// atomic sequence through a splitmix64-style multiplier.
var (
	traceIDSeq  atomic.Uint64 //etsqp:atomic
	traceIDSalt = uint64(time.Now().UnixNano())
)

// newTraceID mints a 16-hex-character process-unique trace ID.
func newTraceID() string {
	x := traceIDSalt + traceIDSeq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return fmt.Sprintf("%016x", x)
}

// NewTrace starts a trace for one query, minting its trace ID.
func NewTrace(query string, mode string, workers int) *Trace {
	return &Trace{Query: query, Mode: mode, Workers: workers, TraceID: newTraceID()}
}

// addSlice records a per-slice event, dropping detail beyond the cap.
// Tracing is opt-in diagnostics (trace == nil on the plain query path),
// so the slice append is acceptable here.
//
//etsqp:coldpath
func (t *Trace) addSlice(ev SliceEvent) {
	t.mu.Lock()
	if len(t.Slices) < maxTraceSlices {
		t.Slices = append(t.Slices, ev)
	}
	t.mu.Unlock()
}

// finish assembles the span tree from the observed stage times. The
// "other" span absorbs the wall time no stage accounts for (scheduling,
// result assembly), so with a single worker the children of the query
// root sum to exactly the traced wall time.
func (t *Trace) finish(st Stats, elapsed time.Duration) {
	t.ElapsedNs = int64(elapsed)
	t.SlicesTotal = st.SlicesRun
	stages := []Span{
		{Name: "parse", DurNs: t.parseNs},
		{Name: "plan", DurNs: t.planNs},
		{Name: "prune", DurNs: st.PruneNanos},
		{Name: "io", DurNs: st.IONanos},
		{Name: "decode", DurNs: st.DecodeNanos},
		{Name: "filter", DurNs: st.FilterNanos},
		{Name: "agg", DurNs: st.AggNanos},
		{Name: "window", DurNs: st.WindowNanos},
		{Name: "merge", DurNs: st.MergeNanos},
	}
	var accounted int64
	for _, s := range stages[2:] { // parse/plan happened before the clock
		accounted += s.DurNs
	}
	other := t.ElapsedNs - accounted
	if other < 0 {
		other = 0 // parallel stage sums can exceed wall time
	}
	stages = append(stages, Span{Name: "other", DurNs: other})
	t.Root = Span{Name: "query", DurNs: t.ElapsedNs, Children: stages}
	if st.CPUNanos != 0 || st.MorselsRun != 0 || st.PagesRead != 0 ||
		st.BytesScanned != 0 || st.ValuesDecoded != 0 ||
		st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Resources = &TraceResources{
			CPUNanos:       st.CPUNanos,
			Morsels:        st.MorselsRun,
			Steals:         st.MorselsStolen,
			PagesRead:      st.PagesRead,
			BytesScanned:   st.BytesScanned,
			ValuesDecoded:  st.ValuesDecoded,
			CacheHits:      st.CacheHits,
			CacheMisses:    st.CacheMisses,
			ArenaHighWater: st.ArenaHighWater,
		}
	}
}

// fail finishes a trace for a query that errored mid-execution: the span
// tree is assembled from whatever stages completed (stage counters are
// unavailable — the result that carries them never materialized) and the
// error is recorded for the slow-query log.
func (t *Trace) fail(err error, elapsed time.Duration) {
	t.Error = err.Error()
	t.finish(Stats{}, elapsed)
}

// StageSum returns the total duration of the query root's children —
// the quantity that must stay within 10% of the traced wall time on
// single-worker runs (parse and plan ran before the traced window, so
// they are excluded).
func (t *Trace) StageSum() int64 {
	var sum int64
	for _, s := range t.Root.Children {
		if s.Name == "parse" || s.Name == "plan" {
			continue
		}
		sum += s.DurNs
	}
	return sum
}

// WriteJSON writes the trace as one JSON document. Field order follows
// the struct declarations, so the output is byte-stable for a given
// trace (the schema golden relies on this).
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// String renders the span tree as indented text — the representation
// EXPLAIN ANALYZE appends under its counters block.
func (t *Trace) String() string {
	var b strings.Builder
	b.WriteString("  trace:\n")
	writeSpan(&b, &t.Root, 2)
	if t.SlicesTotal > 0 {
		fmt.Fprintf(&b, "    slices: %d run, %d recorded\n", t.SlicesTotal, len(t.Slices))
	}
	for _, ev := range t.Slices {
		fmt.Fprintf(&b, "      slice [%d, %d) rows=%d fused=%v", ev.StartRow, ev.EndRow, ev.Rows, ev.Fused)
		if ev.Nv > 0 {
			fmt.Fprintf(&b, " width=%d nv=%d", ev.Width, ev.Nv)
		}
		fmt.Fprintf(&b, " dur=%v\n", time.Duration(ev.DurNs))
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %v\n", s.Name, time.Duration(s.DurNs))
	for i := range s.Children {
		writeSpan(b, &s.Children[i], depth+1)
	}
}
