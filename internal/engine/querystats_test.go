package engine

import (
	"testing"

	"etsqp/internal/sqlparse"
)

// TestQueryStatsZeroAllocSteadyState pins the cost of per-query
// resource attribution on the Figure 10 hot path (fused aggregate over
// a multi-page series, shared pool, tracing off): the attribution
// collector is embedded by value in the per-query stats collector and
// charged through nil-gated atomics, so a steady-state Execute holds
// the same page-proportional allocation budget as before the feature —
// zero allocations are added per operation. The pool-layer half of the
// proof (RunWith with a collector allocates exactly zero, like Run) is
// TestRunWithQueryStatsAllocs in internal/exec.
func TestQueryStatsZeroAllocSteadyState(t *testing.T) {
	ts, vals := testData(8192, 7, true)
	st := storeFor(t, ModeETSQP, ts, vals, 1024)
	e := New(st, ModeETSQP)
	e.Workers = 4
	q, err := sqlparse.Parse("SELECT SUM(A), COUNT(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: plan cache, pool batch/submitter freelists, worker arenas.
	var slices int64
	for i := 0; i < 3; i++ {
		res, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		slices = res.Stats.SlicesRun
	}
	if slices == 0 {
		t.Fatal("no pipeline jobs ran")
	}

	// Attribution is on for every query, not just traced ones.
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MorselsRun != slices {
		t.Errorf("MorselsRun = %d, want the %d pipeline jobs", res.Stats.MorselsRun, slices)
	}
	if res.Stats.CPUNanos <= 0 {
		t.Errorf("CPUNanos = %d, want > 0", res.Stats.CPUNanos)
	}
	// ArenaHighWater is not asserted: the fused aggregate path never
	// materializes, so its own arena use is zero, and the shared default
	// pool's arenas may or may not have grown under earlier tests.

	n := testing.AllocsPerRun(50, func() {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the same page-proportional constant the executor held
	// before per-query attribution existed — the collector itself is one
	// of the fixed per-query allocations, and charging it is atomic adds
	// only.
	if budget := float64(slices*12 + 64); n > budget {
		t.Errorf("Execute: %.1f allocs/op over %d jobs, budget %.0f", n, slices, budget)
	}
	t.Logf("Execute: %.1f allocs/op over %d jobs", n, slices)
}
