package engine

import (
	"testing"

	"etsqp/internal/exec"
)

// TestBatchCursorSteadyStateAllocs is the runtime cross-check of the
// //etsqp:hotpath annotations on the batch-cursor path (Next, fill,
// ts, val, Len): once the decoded-page cache is warm, draining a
// cursor costs a small fixed number of allocations — cursor and head
// construction plus the sort.Search closures in PagesInRange — and
// never a function of page or row count. A per-batch or per-row
// allocation regression breaks the budget immediately, the same way
// the hotpathalloc analyzer catches one statically.
func TestBatchCursorSteadyStateAllocs(t *testing.T) {
	ts, vals := testData(8192, 7, true)
	st := storeFor(t, ModeETSQP, ts, vals, 512)
	e := New(st, ModeETSQP)
	// engine.New leaves Cache nil; the steady state under test is the
	// cache-hit path, so wire a cache big enough to hold every page.
	e.Cache = exec.NewPageCache(64 << 20)

	t1, t2 := ts[100], ts[len(ts)-100]
	col := &statsCollector{}

	drain := func() int {
		cur, err := e.newBatchCursor("ts", t1, t2, col)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			b, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				return rows
			}
			rows += b.Len()
		}
	}
	want := drain() // warms the cache
	if want != len(ts)-199 {
		t.Fatalf("cursor drained %d rows, want %d", want, len(ts)-199)
	}
	if e.Cache.Len() == 0 {
		t.Fatal("warm-up did not populate the decoded-page cache")
	}

	n := testing.AllocsPerRun(50, func() {
		if got := drain(); got != want {
			t.Fatalf("cursor drained %d rows, want %d", got, want)
		}
	})
	// Budget: the batchCursor itself, PagesInRange's two search
	// closures, and slack for the testing harness — nothing that scales
	// with the 16 pages or 8k rows drained.
	if n > 8 {
		t.Errorf("warm cursor drain: %.1f allocs/op, budget 8", n)
	}
	t.Logf("warm cursor drain: %.1f allocs/op over %d rows", n, want)

	advance := func() int {
		cur, err := e.newBatchCursor("ts", t1, t2, col)
		if err != nil {
			t.Fatal(err)
		}
		h := &cursorHead{c: cur}
		var sum int64
		rows := 0
		for {
			if err := h.fill(); err != nil {
				t.Fatal(err)
			}
			if h.eof {
				break
			}
			sum += h.ts() + h.val()
			h.i++
			rows++
		}
		if sum == 0 {
			t.Fatal("implausible zero checksum")
		}
		return rows
	}
	if got := advance(); got != want {
		t.Fatalf("head advanced %d rows, want %d", got, want)
	}
	n = testing.AllocsPerRun(50, func() {
		if got := advance(); got != want {
			t.Fatalf("head advanced %d rows, want %d", got, want)
		}
	})
	// One more alloc than the drain budget: the cursorHead.
	if n > 9 {
		t.Errorf("warm head advance: %.1f allocs/op, budget 9", n)
	}
	t.Logf("warm head advance: %.1f allocs/op over %d rows", n, want)
}
