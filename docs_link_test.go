package etsqp

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links; the target is split
// from any #fragment before checking.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks walks every markdown file in the repository and verifies
// that relative link targets exist, so the documentation set cannot
// silently rot as files move. External links (scheme-prefixed) and
// pure-fragment links are skipped; lint fixture trees are skipped
// because their docs are deliberately self-inconsistent.
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("expected to find the documentation set, got %v", mdFiles)
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // same-file fragment
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
