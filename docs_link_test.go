package etsqp

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links; the target is split
// from any #fragment before checking.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings; the text renders to an anchor slug.
var mdHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slugify converts a heading to its rendered anchor the way GitHub
// does: inline code markers stripped, lowercased, everything but
// letters, digits, hyphens, underscores and spaces removed, spaces to
// hyphens. Duplicate headings get -1, -2, ... suffixes, which
// headingSlugs handles.
func slugify(heading string) string {
	s := strings.ReplaceAll(heading, "`", "")
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingSlugs returns the set of anchor slugs a markdown document
// renders, skipping fenced code blocks (a # inside ``` is not a
// heading) and numbering duplicates like the renderer does.
func headingSlugs(data string) map[string]bool {
	out := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := mdHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := counts[slug]; n > 0 {
			out[slug+"-"+itoa(n)] = true
		} else {
			out[slug] = true
		}
		counts[slug]++
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// TestDocLinks walks every markdown file in the repository and verifies
// that relative link targets exist and that #fragment anchors resolve
// to a rendered heading of the target document, so the documentation
// set cannot silently rot as files move or sections get renamed.
// External links (scheme-prefixed) are skipped; lint fixture trees are
// skipped because their docs are deliberately self-inconsistent.
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("expected to find the documentation set, got %v", mdFiles)
	}

	// Anchor sets are built lazily: most targets carry no fragment.
	slugCache := map[string]map[string]bool{}
	slugsOf := func(path string) (map[string]bool, error) {
		if s, ok := slugCache[path]; ok {
			return s, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		s := headingSlugs(string(data))
		slugCache[path] = s
		return s, nil
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			full := m[1]
			if strings.Contains(full, "://") || strings.HasPrefix(full, "mailto:") {
				continue
			}
			target, frag, _ := strings.Cut(full, "#")
			resolved := md // same-file fragment
			if target != "" {
				resolved = filepath.Join(filepath.Dir(md), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (resolved %s)", md, full, resolved)
					continue
				}
			}
			if frag == "" || !strings.HasSuffix(resolved, ".md") {
				continue // anchors into non-markdown files are not checkable
			}
			slugs, err := slugsOf(resolved)
			if err != nil {
				t.Fatal(err)
			}
			if !slugs[frag] {
				t.Errorf("%s: link %q points at missing anchor #%s in %s", md, full, frag, resolved)
			}
		}
	}
}

// TestHeadingSlugs pins the slug algorithm against rendered-anchor
// behavior so anchor validation itself cannot drift silently.
func TestHeadingSlugs(t *testing.T) {
	doc := "# Top Level\n" +
		"## `code` and text\n" +
		"### Dots. Commas, and (parens)!\n" +
		"## Repeated\n" +
		"## Repeated\n" +
		"```\n# not a heading\n```\n" +
		"## snake_case and-hyphens\n"
	got := headingSlugs(doc)
	for _, want := range []string{
		"top-level",
		"code-and-text",
		"dots-commas-and-parens",
		"repeated",
		"repeated-1",
		"snake_case-and-hyphens",
	} {
		if !got[want] {
			t.Errorf("missing slug %q in %v", want, got)
		}
	}
	if got["not-a-heading"] {
		t.Error("heading inside code fence produced a slug")
	}
}
