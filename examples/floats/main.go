// Floats: the XOR-family encoders (Gorilla, Chimp, Elf) on float64
// sensor readings — the lossless floating-point side of Table I — and a
// query over float data stored as bit patterns.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding/chimp"
	"etsqp/internal/encoding/elf"
	"etsqp/internal/encoding/gorilla"
	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	// A temperature sensor with one-decimal precision — the workload the
	// erasure-based Elf encoder targets.
	rng := rand.New(rand.NewSource(7))
	n := 50_000
	ts := make([]int64, n)
	temps := make([]float64, n)
	v := 21.0
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		v += float64(rng.Intn(11)-5) / 10
		temps[i] = math.Round(v*10) / 10
	}
	words := make([]uint64, n)
	for i, f := range temps {
		words[i] = math.Float64bits(f)
	}

	fmt.Println("XOR-family encoders on 1-decimal temperatures (bits/value):")
	wG := bitio.NewWriter(n)
	gorilla.EncodeValues(wG, words)
	fmt.Printf("  gorilla  %5.1f\n", float64(wG.BitLen())/float64(n))
	wC := bitio.NewWriter(n)
	chimp.Encode(wC, words)
	fmt.Printf("  chimp    %5.1f\n", float64(wC.BitLen())/float64(n))
	wE := bitio.NewWriter(n)
	elf.EncodeFloats(wE, temps)
	fmt.Printf("  elf      %5.1f   (erasure + decimal-round restore)\n",
		float64(wE.BitLen())/float64(n))

	// Store the float series as bit patterns under the elf codec and run
	// a range count through the engine.
	bitsCol := make([]int64, n)
	for i, w := range words {
		bitsCol[i] = int64(w)
	}
	store := storage.NewStore()
	if err := store.Append("temps", ts, bitsCol, storage.Options{ValueCodec: "elf"}); err != nil {
		log.Fatal(err)
	}
	eng := engine.New(store, engine.ModeETSQP)
	res, err := eng.ExecuteSQL(fmt.Sprintf(
		"SELECT COUNT(A) FROM temps WHERE TIME >= %d AND TIME <= %d", ts[n/4], ts[3*n/4]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrows in middle half of the series: %v\n", res.Aggregates["COUNT(A)"])

	// Exact recovery check.
	_, gotBits, err := store.ReadColumns("temps")
	if err != nil {
		log.Fatal(err)
	}
	for i := range gotBits {
		if math.Float64frombits(uint64(gotBits[i])) != temps[i] {
			log.Fatalf("lossy recovery at %d", i)
		}
	}
	fmt.Println("all float values recovered exactly")
}
