// Downsample: the paper's motivating workload — sliding-window averages
// (SW aggregation) over a weather-station series, comparing the fused
// vectorized engine against serial decoding.
package main

import (
	"fmt"
	"log"
	"time"

	"etsqp/internal/dataset"
	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	// 200k rows of the Atmosphere workload (1 s sampling).
	d, err := dataset.Generate("Atm", 200_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore()
	if err := store.Append("atm.temperature", d.Time, d.Attrs[0], storage.Options{}); err != nil {
		log.Fatal(err)
	}

	// Down-sample to 1-hour windows: SELECT AVG(A) ... SW(t0, 3600s).
	sql := fmt.Sprintf("SELECT AVG(A) FROM atm.temperature SW(%d, %d)",
		d.Time[0], int64(3600*1000))

	for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSerial} {
		eng := engine.New(store, mode)
		start := time.Now()
		res, err := eng.ExecuteSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s %d windows in %v (%.1f Mtuples/s)\n",
			mode, len(res.Windows), elapsed,
			float64(res.Stats.TuplesLoaded)/elapsed.Seconds()/1e6)
		if mode == engine.ModeETSQP {
			fmt.Println("first hours (window start → avg temperature, tenths °C):")
			for i, w := range res.Windows {
				if i >= 5 {
					break
				}
				fmt.Printf("  t+%2dh → %7.2f (%d points)\n", i, w.Value, w.Count)
			}
		}
	}
}
