// Downsample: the paper's motivating workload — sliding-window averages
// (SW aggregation) over a weather-station series, comparing the fused
// vectorized engine against serial decoding, then a hopping window
// (GROUP BY TIME with slide < width) whose overlapping instances share
// decoded row segments.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"etsqp/internal/dataset"
	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// 200k rows of the Atmosphere workload (1 s sampling).
	d, err := dataset.Generate("Atm", 200_000, 1)
	if err != nil {
		return err
	}
	store := storage.NewStore()
	if err := store.Append("atm.temperature", d.Time, d.Attrs[0], storage.Options{}); err != nil {
		return err
	}

	// Down-sample to 1-hour tumbling windows: SW(t0, 3600s).
	sql := fmt.Sprintf("SELECT AVG(A) FROM atm.temperature SW(%d, %d)",
		d.Time[0], int64(3600*1000))

	for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSerial} {
		eng := engine.New(store, mode)
		start := time.Now()
		res, err := eng.ExecuteSQL(sql)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-8s %d windows in %v (%.1f Mtuples/s)\n",
			mode, len(res.Windows), elapsed,
			float64(res.Stats.TuplesLoaded)/elapsed.Seconds()/1e6)
		if mode == engine.ModeETSQP {
			fmt.Fprintln(w, "first hours (window start → avg temperature, tenths °C):")
			for i, win := range res.Windows {
				if i >= 5 {
					break
				}
				fmt.Fprintf(w, "  t+%2dh → %7.2f (%d points)\n", i, win.Value, win.Count)
			}
		}
	}

	// Hopping window: 1-hour windows every 15 minutes. Adjacent windows
	// overlap by 45 minutes, so the engine cuts the rows into disjoint
	// segments at the window boundaries, aggregates each segment once,
	// and each window merges its contiguous segment run — the decoded
	// work is shared instead of redone 4x.
	eng := engine.New(store, engine.ModeETSQP)
	res, err := eng.ExecuteSQL(
		"SELECT MAX(A) FROM atm.temperature GROUP BY TIME(3600000, 900000)")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hopping max: %d windows from %d shared segments\n",
		len(res.Windows), res.Stats.WindowSegments)
	for i, win := range res.Windows {
		if i >= 4 {
			break
		}
		fmt.Fprintf(w, "  [t+%2dm, t+%2dm+1h) → max %6.0f (%d points)\n",
			15*i, 15*i, win.Value, win.Count)
	}
	return nil
}
