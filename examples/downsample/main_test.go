package main

import (
	"strings"
	"testing"
)

// TestDownsample runs the example end to end: tumbling SW windows in two
// modes plus the hopping GROUP BY TIME query with shared segments.
func TestDownsample(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ETSQP",
		"Serial",
		"windows in",
		"hopping max:",
		"shared segments",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
