// Ingest: the full delivery path of Section I — an IoT device encodes
// readings incrementally and ships encoded pages over a (real) network
// connection; the server ingests them without decoding and answers
// queries with the vectorized engine.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"etsqp/internal/engine"
	"etsqp/internal/storage"
	"etsqp/internal/transport"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	store := storage.NewStore()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // server: ingest encoded pages
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		n, err := transport.Receive(conn, store)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server: ingested %d encoded page pairs\n", n)
	}()

	// Device: a Raspberry-Pi-style node with two sensors, flushing every
	// 512 points (the receiving-buffer bound of Section I).
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	sender := transport.NewSender(conn, 512, storage.Options{})
	n := 20_000
	var rawBytes int
	for i := 0; i < n; i++ {
		t := 1_700_000_000_000 + int64(i)*1000
		velocity := 60 + int64(i%7) - 3
		temp := 210 + int64(i%13)
		must(sender.Record("pi.velocity", t, velocity))
		must(sender.Record("pi.temperature", t, temp))
		rawBytes += 2 * 16
	}
	must(sender.Close())
	conn.Close()
	wg.Wait()

	ser, _ := store.Series("pi.velocity")
	fmt.Printf("device sent %d points; raw would be %d B, stored %d B per series (~%.0fx)\n",
		2*n, rawBytes/2, ser.EncodedBytes(), float64(rawBytes/2)/float64(ser.EncodedBytes()))

	eng := engine.New(store, engine.ModeETSQP)
	res, err := eng.ExecuteSQL("SELECT AVG(A), MIN(A), MAX(A) FROM pi.velocity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("velocity: avg %.2f, min %v, max %v km/h\n",
		res.Aggregates["AVG(A)"], res.Aggregates["MIN(A)"], res.Aggregates["MAX(A)"])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
