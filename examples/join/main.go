// Join: multi-series pipelines — series merge (UNION ... ORDER BY TIME),
// natural join, and an arithmetic projection over the join, mirroring
// benchmark queries Q4-Q6. Both operators stream typed columnar batches
// from storage cursors, so a LIMIT stops page decoding early.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	store := storage.NewStore()

	// Two sensors on different sampling grids: temperatures every 2 s,
	// humidity every 3 s — they align every 6 s.
	n := 50_000
	t1 := make([]int64, n)
	v1 := make([]int64, n)
	t2 := make([]int64, n)
	v2 := make([]int64, n)
	for i := 0; i < n; i++ {
		t1[i] = int64(i+1) * 2000
		v1[i] = 200 + int64(i%40)
		t2[i] = int64(i+1) * 3000
		v2[i] = 550 + int64(i%25)
	}
	if err := store.Append("temp", t1, v1, storage.Options{}); err != nil {
		return err
	}
	if err := store.Append("hum", t2, v2, storage.Options{}); err != nil {
		return err
	}

	eng := engine.New(store, engine.ModeETSQP)

	// Q5: time-ordered merge of both series.
	res, err := eng.ExecuteSQL("SELECT * FROM temp UNION hum ORDER BY TIME")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "merge: %d rows (from %d + %d inputs)\n", len(res.Rows), n, n)

	// Q6: natural join — rows where both sensors reported.
	res, err = eng.ExecuteSQL("SELECT * FROM temp, hum")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "natural join: %d aligned rows\n", len(res.Rows))
	for i := 0; i < 3 && i < len(res.Rows); i++ {
		r := res.Rows[i]
		fmt.Fprintf(w, "  t=%-8d temp=%d hum=%d\n", r.Time, r.Values[0], r.Values[1])
	}

	// Q4: arithmetic over the join.
	res, err = eng.ExecuteSQL("SELECT temp.A + hum.A FROM temp, hum")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "projection temp+hum: %d rows, first = %d\n",
		len(res.Rows), res.Rows[0].Values[0])

	// LIMIT stops the cursors early: only the first pages of each side
	// are ever decoded, visible as the pages-read / batch counts.
	res, err = eng.ExecuteSQL("SELECT * FROM temp, hum LIMIT 3")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "join LIMIT 3: %d rows from %d cursor batches (%d of %d pages read)\n",
		len(res.Rows), res.Stats.CursorBatches, res.Stats.PagesRead, res.Stats.PagesTotal)
	return nil
}
