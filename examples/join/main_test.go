package main

import (
	"strings"
	"testing"
)

// TestJoin runs the example end to end: merge, natural join, projection
// over the join, and the LIMIT early-stop over batch cursors.
func TestJoin(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"merge: 83334 rows",
		"natural join: 16666 aligned rows",
		"projection temp+hum:",
		"join LIMIT 3: 3 rows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
