// Compression: compare every combined encoder (Table I) on the Table II
// workloads — the space-efficiency half of the paper's motivation.
package main

import (
	"fmt"
	"log"

	"etsqp/internal/dataset"
	"etsqp/internal/encoding"

	_ "etsqp/internal/encoding/chimp"
	_ "etsqp/internal/encoding/gorilla"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

func main() {
	const n = 100_000
	codecs := []string{"ts2diff", "sprintz", "rlbe", "gorilla", "chimp", "fastlanes"}

	fmt.Printf("%-6s", "data")
	for _, c := range codecs {
		fmt.Printf("%12s", c)
	}
	fmt.Println("   (compression ratio vs 8 B/value; higher is better)")

	for _, spec := range dataset.Specs {
		d, err := dataset.Generate(spec.Label, n, 42)
		if err != nil {
			log.Fatal(err)
		}
		col := d.Attrs[0]
		fmt.Printf("%-6s", spec.Label)
		for _, name := range codecs {
			c, err := encoding.Lookup(name)
			if err != nil {
				log.Fatal(err)
			}
			blk, err := c.Encode(col)
			if err != nil {
				log.Fatal(err)
			}
			got, err := c.Decode(blk)
			if err != nil || len(got) != len(col) {
				log.Fatalf("%s/%s: decode failed: %v", spec.Label, name, err)
			}
			fmt.Printf("%11.1fx", float64(len(col)*8)/float64(len(blk)))
		}
		fmt.Println()
	}
}
