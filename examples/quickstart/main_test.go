package main

import (
	"strings"
	"testing"
)

// TestQuickstart runs the example end to end: the encode → store → query
// path must succeed and report a sane aggregate line.
func TestQuickstart(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stored 10000 points",
		"avg velocity",
		"pipeline ran",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
