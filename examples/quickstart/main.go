// Quickstart: encode a small IoT series, store it as pages, and run an
// aggregation query through the vectorized ETSQP engine.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A velocity sensor reporting once per minute.
	n := 10_000
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1_700_000_000_000 + int64(i)*60_000
		vals[i] = 80 + int64(i%25) - 12 // km/h around 80
	}

	// Ingest: pages are TS2DIFF-encoded (order-2 deltas for timestamps).
	store := storage.NewStore()
	if err := store.Append("root.fleet.truck1.velocity", ts, vals, storage.Options{}); err != nil {
		return err
	}
	ser, _ := store.Series("root.fleet.truck1.velocity")
	fmt.Fprintf(w, "stored %d points in %d pages, %d encoded bytes (%.1fx compression)\n",
		ser.NumPoints(), ser.NumPages(), ser.EncodedBytes(),
		float64(n*16)/float64(ser.EncodedBytes()))

	// Query with the vectorized pipeline engine.
	eng := engine.New(store, engine.ModeETSQPPrune)
	res, err := eng.ExecuteSQL(fmt.Sprintf(
		"SELECT AVG(A), MIN(A), MAX(A) FROM root.fleet.truck1.velocity WHERE TIME >= %d AND TIME <= %d",
		ts[1000], ts[9000]))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "avg velocity = %.2f km/h (min %v, max %v)\n",
		res.Aggregates["AVG(A)"], res.Aggregates["MIN(A)"], res.Aggregates["MAX(A)"])
	fmt.Fprintf(w, "pipeline ran %d jobs over %d pages\n",
		res.Stats.SlicesRun, res.Stats.PagesTotal)
	return nil
}
