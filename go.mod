module etsqp

go 1.22
