// Command etsqp-lint is the project's static-analysis multichecker: it
// loads the whole module with the standard library's type checker and
// runs the invariant suite in internal/lint/analyzers —
//
//	atomicfield    //etsqp:atomic fields touched only through sync/atomic
//	boundscontract call sites satisfy callees' //etsqp:bounds parameter intervals
//	guardedby      //etsqp:guardedby fields accessed holding the named mutex
//	hotpathalloc   no allocating constructs reachable from //etsqp:hotpath
//	lockorder      the module-wide lock-acquisition graph stays acyclic
//	nopanic        no panics reachable from Decode/Read/Unmarshal entries
//	obsguard       obs counters via atomic helpers, Enabled()-gated in hot paths
//	plantable      plan-table widths in range, lane loops within vector bounds
//	querydoc       SQL grammar surface and docs/QUERYING.md stay in sync
//	rangecheck     int64 arithmetic in //etsqp:rangecheck kernels is checked or in range
//	sharedwrite    parallel fan-outs write disjoint index ranges
//
// Usage:
//
//	go run ./cmd/etsqp-lint ./...
//	go run ./cmd/etsqp-lint -run nopanic,plantable ./...
//	go run ./cmd/etsqp-lint -json ./...
//
// Diagnostics print as file:line:col: analyzer: message (or as a JSON
// array with -json) in a deterministic order, and the exit status is
// non-zero when any finding is reported. The annotations and
// suppression story are documented in docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"etsqp/internal/lint"
	"etsqp/internal/lint/analyzers"
	"etsqp/internal/lint/findings"
)

func main() {
	dir := flag.String("C", ".", "module root to analyze (directory containing go.mod)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All
	if *run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers.All {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "etsqp-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	root := *dir
	// Package patterns (./...) are accepted for familiarity; the loader
	// always analyzes the whole module, which is what the suite's
	// cross-package invariants need anyway.
	m, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsqp-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(m, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsqp-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := findings.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "etsqp-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "etsqp-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
