// Command etsqp-vet verifies compiler-level contracts that the AST
// analyzers in cmd/etsqp-lint cannot see. It rebuilds the module with
//
//	-gcflags='-m=2 -d=ssa/check_bce/debug=1'
//
// parses the escape-analysis, inlining and bounds-check diagnostics into
// per-function facts, and enforces three doc-comment contracts on the
// annotated kernels:
//
//	nobce     //etsqp:nobce     zero retained bounds checks in the body
//	noescape  //etsqp:noescape  no parameter/local escapes to the heap
//	inline    //etsqp:inline    the function must be inlinable
//
// Usage:
//
//	go run ./cmd/etsqp-vet ./...
//	go run ./cmd/etsqp-vet -run nobce,inline ./...
//	go run ./cmd/etsqp-vet -json ./...
//
// Diagnostics print as file:line:col: contract: message (or as a JSON
// array with -json), and the exit status is non-zero when any finding is
// reported. The contracts and the escape/BCE budget they enforce are
// documented in docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"etsqp/internal/lint/findings"
	"etsqp/internal/lint/vet"
)

var contractDocs = map[string]string{
	vet.ContractNoBCE:    "annotated functions compile with zero retained bounds checks",
	vet.ContractNoEscape: "no parameter or local in annotated functions escapes to the heap",
	vet.ContractInline:   "annotated functions are within the compiler's inlining budget",
}

func main() {
	dir := flag.String("C", ".", "module root to vet (directory containing go.mod)")
	run := flag.String("run", "", "comma-separated contract names to check (default: all)")
	list := flag.Bool("list", false, "list available contracts and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, c := range vet.AllContracts {
			fmt.Printf("%-14s %s\n", c, contractDocs[c])
		}
		return
	}

	var contracts []string
	if *run != "" {
		known := map[string]bool{}
		for _, c := range vet.AllContracts {
			known[c] = true
		}
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "etsqp-vet: unknown contract %q\n", name)
				os.Exit(2)
			}
			contracts = append(contracts, name)
		}
	}

	// Package patterns (./...) are accepted for familiarity; the pass
	// always rebuilds and vets the whole module.
	diags, err := vet.Check(*dir, contracts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsqp-vet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := findings.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "etsqp-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "etsqp-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
