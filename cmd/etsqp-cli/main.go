// etsqp-cli is a small SQL shell over the ETSQP engine. It loads a store
// file written by storage.WriteFile, or generates a Table II dataset on
// the fly, then executes statements from the command line or stdin.
// EXPLAIN <query> prints the execution plan without running it;
// EXPLAIN ANALYZE <query> runs it and annotates the plan with the
// observed counters and per-stage times (see docs/OBSERVABILITY.md).
// With -obs, the process-wide metric counters dump on exit.
//
// Usage:
//
//	etsqp-cli -gen Atm -rows 100000 -q "SELECT AVG(A) FROM ts1"
//	etsqp-cli -load store.etsqp            # interactive: one query per line
//	etsqp-cli -gen Gas -mode serial -q "EXPLAIN SELECT SUM(A) FROM ts1"
//	etsqp-cli -gen Atm -mode prune -obs -q "EXPLAIN ANALYZE SELECT SUM(A) FROM ts1 WHERE A >= 3"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"etsqp/internal/cli"
	"etsqp/internal/obs"

	_ "etsqp/internal/encoding/chimp"
	_ "etsqp/internal/encoding/elf"
	_ "etsqp/internal/encoding/gorilla"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

func main() {
	var (
		load    = flag.String("load", "", "store file to load")
		gen     = flag.String("gen", "", "Table II dataset label to generate (Atm Clim Gas Time Sine TPCH)")
		rows    = flag.Int("rows", 100_000, "rows to generate")
		seed    = flag.Int64("seed", 42, "generator seed")
		codec   = flag.String("codec", "ts2diff", "value codec for generated data")
		mode    = flag.String("mode", "etsqp", "execution mode: etsqp prune serial sboost fastlanes")
		query   = flag.String("q", "", "one-shot query (otherwise read stdin)")
		workers = flag.Int("workers", 0, "worker pipelines (0 = GOMAXPROCS)")
		maxRows = flag.Int("maxrows", 20, "row-output limit")
		obsDump = flag.Bool("obs", false, "enable global metrics and dump them on exit")
	)
	flag.Parse()
	if *obsDump {
		obs.Enable()
		defer func() {
			fmt.Println("-- metrics --")
			obs.Dump(os.Stdout)
		}()
	}
	cfg := cli.Config{
		LoadPath: *load, GenLabel: *gen, Rows: *rows, Seed: *seed,
		Codec: *codec, Mode: *mode, Workers: *workers, MaxRows: *maxRows,
	}
	store, err := cfg.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %s\n", strings.Join(store.Names(), ", "))
	eng, err := cfg.NewEngine(store)
	if err != nil {
		log.Fatal(err)
	}
	if *query != "" {
		if err := cli.Execute(os.Stdout, eng, *query, *maxRows); err != nil {
			log.Fatal(err)
		}
		return
	}
	cli.Repl(os.Stdin, os.Stdout, os.Stderr, eng, *maxRows)
}
