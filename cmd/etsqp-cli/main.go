// etsqp-cli is a small SQL shell over the ETSQP engine. It loads a store
// file written by storage.WriteFile, or generates a Table II dataset on
// the fly, then executes statements from the command line or stdin.
// EXPLAIN <query> prints the execution plan without running it;
// EXPLAIN ANALYZE <query> runs it and annotates the plan with the
// observed counters, per-stage times, and the per-query span tree (see
// docs/OBSERVABILITY.md). With -obs, the process-wide metric counters
// dump on exit.
//
// The serve subcommand runs the live observability surface instead of
// the shell: an HTTP server with /metrics (Prometheus exposition with
// trace-ID exemplars), /debug/vars, /debug/windows (rolling-window
// rates and quantiles), /debug/dash (browser ops console),
// /debug/pprof, and /query endpoints, an optional transport ingest
// listener, and a bounded slow-query log of span-tree JSON lines.
//
// The top subcommand is the terminal ops console: it polls a running
// server's /debug/windows and renders QPS, latency quantiles, pool
// utilization, cache hit ratio, and the most expensive recent queries
// by worker CPU, refreshing in place like top(1).
//
// Usage:
//
//	etsqp-cli -gen Atm -rows 100000 -q "SELECT AVG(A) FROM ts1"
//	etsqp-cli -load store.etsqp            # interactive: one query per line
//	etsqp-cli -gen Gas -mode serial -q "EXPLAIN SELECT SUM(A) FROM ts1"
//	etsqp-cli -gen Atm -mode prune -obs -q "EXPLAIN ANALYZE SELECT SUM(A) FROM ts1 WHERE A >= 3"
//	etsqp-cli serve -gen Atm -http :8080 -ingest :9090 -slow 100ms -slow-max 1024
//	etsqp-cli top -url http://localhost:8080 -interval 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"etsqp/internal/cli"
	"etsqp/internal/exec"
	"etsqp/internal/obs"
	"etsqp/internal/serve"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/chimp"
	_ "etsqp/internal/encoding/elf"
	_ "etsqp/internal/encoding/gorilla"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	var (
		load    = flag.String("load", "", "store file to load")
		gen     = flag.String("gen", "", "Table II dataset label to generate (Atm Clim Gas Time Sine TPCH)")
		rows    = flag.Int("rows", 100_000, "rows to generate")
		seed    = flag.Int64("seed", 42, "generator seed")
		codec   = flag.String("codec", "ts2diff", "value codec for generated data")
		mode    = flag.String("mode", "etsqp", "execution mode: etsqp prune serial sboost fastlanes")
		query   = flag.String("q", "", "one-shot query (otherwise read stdin)")
		workers = flag.Int("workers", 0, "worker pipelines (0 = GOMAXPROCS)")
		maxRows = flag.Int("maxrows", 20, "row-output limit")
		obsDump = flag.Bool("obs", false, "enable global metrics and dump them on exit")
	)
	flag.Parse()
	if *obsDump {
		obs.Enable()
		defer func() {
			fmt.Println("-- metrics --")
			obs.Dump(os.Stdout)
		}()
	}
	cfg := cli.Config{
		LoadPath: *load, GenLabel: *gen, Rows: *rows, Seed: *seed,
		Codec: *codec, Mode: *mode, Workers: *workers, MaxRows: *maxRows,
	}
	store, err := cfg.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %s\n", strings.Join(store.Names(), ", "))
	eng, err := cfg.NewEngine(store)
	if err != nil {
		log.Fatal(err)
	}
	if *query != "" {
		if err := cli.Execute(os.Stdout, eng, *query, *maxRows); err != nil {
			log.Fatal(err)
		}
		return
	}
	cli.Repl(os.Stdin, os.Stdout, os.Stderr, eng, *maxRows)
}

// runServe starts the observability serving surface: HTTP metrics,
// profiling and query endpoints over a loaded or generated store, plus
// an optional transport ingest listener.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		load     = fs.String("load", "", "store file to load")
		gen      = fs.String("gen", "", "Table II dataset label to generate (Atm Clim Gas Time Sine TPCH)")
		rows     = fs.Int("rows", 100_000, "rows to generate")
		seed     = fs.Int64("seed", 42, "generator seed")
		codec    = fs.String("codec", "ts2diff", "value codec for generated data")
		mode     = fs.String("mode", "etsqp", "execution mode: etsqp prune serial sboost fastlanes")
		workers  = fs.Int("workers", 0, "worker pipelines (0 = GOMAXPROCS)")
		maxRows  = fs.Int("maxrows", 20, "row-output limit on /query")
		httpAddr = fs.String("http", ":8080", "HTTP listen address")
		ingest   = fs.String("ingest", "", "transport ingest listen address (empty = off)")
		slow     = fs.Duration("slow", 100*time.Millisecond, "slow-query log threshold (0 logs everything)")
		slowMax  = fs.Int("slow-max", 1024, "slow-query traces retained in memory (negative = none)")
		execWork = fs.Int("exec-workers", 0, "shared execution pool size (0 = GOMAXPROCS)")
		cacheMB  = fs.Int("cache-mb", 64, "decoded-page cache budget in MiB (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	cfg := cli.Config{
		LoadPath: *load, GenLabel: *gen, Rows: *rows, Seed: *seed,
		Codec: *codec, Mode: *mode, Workers: *workers, MaxRows: *maxRows,
	}
	// A pure ingest server starts with an empty store and fills from the
	// transport listener.
	store := storage.NewStore()
	if *load != "" || *gen != "" {
		var err error
		store, err = cfg.BuildStore()
		if err != nil {
			log.Fatal(err)
		}
	}
	eng, err := cfg.NewEngine(store)
	if err != nil {
		log.Fatal(err)
	}
	// The shared execution layer (docs/EXECUTION.md): one pool for every
	// concurrent query, and a decoded-page cache invalidated on ingest.
	eng.Pool = exec.NewPool(*execWork)
	if *cacheMB > 0 {
		cache := exec.NewPageCache(int64(*cacheMB) << 20)
		store.OnMutate(func(series string) { cache.InvalidateSeries(series) })
		eng.Cache = cache
	}
	obs.Enable() // the serving surface exists to be scraped
	// The rolling-window sampler behind /debug/windows and /debug/dash:
	// one registry snapshot per second, 5m30s of history.
	windows := obs.NewWindow(time.Second, 0)
	stopWindows := windows.Start()
	defer stopWindows()
	srv := &serve.Server{
		Engine: eng, Store: store,
		SlowThreshold: *slow, SlowLog: os.Stderr, MaxRows: *maxRows,
		SlowMax: *slowMax, Windows: windows,
	}
	if *ingest != "" {
		l, err := net.Listen("tcp", *ingest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingest: %s\n", l.Addr())
		go func() { log.Fatal(srv.ServeIngest(l)) }()
	}
	fmt.Printf("http: %s (endpoints: /metrics /debug/vars /debug/windows /debug/dash /debug/pprof /query /healthz)\n", *httpAddr)
	log.Fatal(http.ListenAndServe(*httpAddr, srv.Handler()))
}

// runTop runs the terminal ops console against a running serve
// instance.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	var (
		url      = fs.String("url", "http://localhost:8080", "base URL of a running etsqp-cli serve instance")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		frames   = fs.Int("n", 0, "number of frames to render (0 = run until the server goes away)")
		topN     = fs.Int("top", 10, "recent queries to list, ranked by worker CPU")
	)
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if err := serve.RunTop(os.Stdout, *url, *interval, *frames, *topN); err != nil {
		log.Fatal(err)
	}
}
