// etsqp-bench regenerates the paper's evaluation tables and figures and
// prints them as aligned text. With -obs, the process-wide observability
// counters (see docs/OBSERVABILITY.md) are enabled for the run and
// dumped as "name value" lines on exit.
//
// Usage:
//
//	etsqp-bench -all
//	etsqp-bench -fig 10            # figures: 10 11 12 13 14
//	etsqp-bench -table 1           # tables: 1 2 3
//	etsqp-bench -fig 10 -rows 200000 -workers 8
//	etsqp-bench -fig 13 -obs       # append the global metrics dump
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"etsqp/internal/bench"
	"etsqp/internal/obs"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (10-14)")
		table   = flag.Int("table", 0, "table number to regenerate (1-3)")
		all     = flag.Bool("all", false, "regenerate everything")
		rows    = flag.Int("rows", 100_000, "rows per generated series")
		seed    = flag.Int64("seed", 42, "dataset generator seed")
		workers = flag.Int("workers", 0, "engine worker pipelines (0 = GOMAXPROCS)")
		reps    = flag.Int("reps", 0, "timed repetitions per point, best-of (0 = default 3)")
		conc    = flag.Bool("conc", false, "run the concurrent-clients shared-execution figure")
		window  = flag.Bool("window", false, "run the window-overlap shared-segment figure")
		csvOut  = flag.Bool("csv", false, "emit measurements as CSV instead of tables")
		obsDump = flag.Bool("obs", false, "enable global metrics and dump them on exit")
		jsonOut = flag.String("jsonout", "", "write every measurement of the run to this BENCH_*.json file")
		check   = flag.String("check", "", "compare the run against this baseline BENCH_*.json; exit 1 on >tolerance regression")
		tol     = flag.Float64("tolerance", 0.20, "fractional throughput drop treated as a regression by -check")
	)
	flag.Parse()
	csvMode = *csvOut
	if *obsDump {
		obs.Enable()
		defer func() {
			section("Metrics")
			obs.Dump(os.Stdout)
		}()
	}
	cfg := bench.Config{Rows: *rows, Seed: *seed, Workers: *workers, Reps: *reps}.WithDefaults()

	if !*all && *fig == 0 && *table == 0 && !*conc && !*window {
		flag.Usage()
		os.Exit(2)
	}
	runAll := func() {
		if *all || *table == 1 {
			printTable1(cfg)
		}
		if *all || *table == 2 {
			printTable2(cfg)
		}
		if *all || *table == 3 {
			printTable3(cfg)
		}
		if *all || *fig == 10 {
			section("Figure 10: throughput of SIMD approaches over IoT queries (Mtuples/s)")
			printMeasurements(must(bench.Fig10(cfg)))
		}
		if *all || *fig == 11 {
			section("Figure 11: query performance over varied threads (Mtuples/s)")
			printMeasurements(must(bench.Fig11(cfg, nil)))
		}
		if *all || *fig == 12 {
			section("Figure 12(a,b): Delta-only encoding vs threads")
			printMeasurements(must(bench.Fig12DeltaThreads(cfg, nil)))
			section("Figure 12(c,d): Delta-Repeat vs run length")
			printMeasurements(must(bench.Fig12RunLength(cfg, nil)))
			section("Figure 12(e,f): Delta-Repeat-Packing vs packing width")
			printMeasurements(must(bench.Fig12PackWidth(cfg, nil)))
		}
		if *all || *fig == 13 {
			section("Figure 13: deployment comparison (time & value range queries)")
			printMeasurements(must(bench.Fig13(cfg)))
		}
		if *all || *conc {
			section("Concurrent clients: shared pool vs pool+cache, skewed page widths (aggregate Mtuples/s)")
			printMeasurements(must(bench.FigConcurrent(cfg, nil)))
		}
		if *all || *window {
			section("Window overlap: shared segments, fused vs serial decode (Mtuples/s)")
			printMeasurements(must(bench.FigWindow(cfg, nil)))
		}
		if *all || *fig == 14 {
			section("Figure 14(a): decoder fusion ablation")
			printMeasurements(must(bench.Fig14Fusion(cfg)))
			section("Figure 14(b): stage time breakdown (ms)")
			printStages(must(bench.Fig14Stages(cfg)))
			section("Figure 14(c,d): page-slice ablation")
			printSlices(must(bench.Fig14Slices(cfg, nil)))
		}
	}
	runAll()
	failed := false
	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			log.Fatal(err)
		}
		base, err := bench.ReadReport(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if base.Rows != cfg.Rows || base.Workers != cfg.Workers || base.Seed != cfg.Seed {
			log.Fatalf("baseline %s was measured at rows=%d workers=%d seed=%d; this run uses rows=%d workers=%d seed=%d",
				*check, base.Rows, base.Workers, base.Seed, cfg.Rows, cfg.Workers, cfg.Seed)
		}
		regs := bench.Compare(bench.NewReport(cfg, collected), base, *tol)
		// A regression must survive a fresh measurement before it fails
		// the gate: re-run the suite and keep each record's best pass, so
		// a transient scheduler stall in one pass cannot flag a record.
		for confirm := 0; len(regs) > 0 && confirm < 2; confirm++ {
			fmt.Printf("\n%d possible regression(s); re-measuring to confirm (pass %d)\n", len(regs), confirm+2)
			prev := collected
			collected = nil
			runAll()
			collected = bench.MergeBest(prev, collected)
			regs = bench.Compare(bench.NewReport(cfg, collected), base, *tol)
		}
		if len(regs) > 0 {
			fmt.Printf("\n%d regression(s) vs %s (tolerance %.0f%%):\n", len(regs), *check, *tol*100)
			for _, g := range regs {
				fmt.Printf("  %s\n", g)
			}
			failed = true
		} else {
			fmt.Printf("\nno regressions vs %s (tolerance %.0f%%)\n", *check, *tol*100)
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.NewReport(cfg, collected).WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d measurements to %s\n", len(collected), *jsonOut)
	}
	if failed {
		os.Exit(1)
	}
}

// collected accumulates every measurement the run produced, for the
// -jsonout / -check perf-trajectory surface.
var collected []bench.Measurement

// csvMode switches the measurement printers to CSV output.
var csvMode bool

// printCSV emits figure,series,x,throughput_mts,elapsed_ns rows.
func printCSV(ms []bench.Measurement) {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	_ = w.Write([]string{"figure", "series", "x", "throughput_mts", "elapsed_ns"})
	for _, m := range ms {
		_ = w.Write([]string{
			m.Figure, m.Series, m.X,
			strconv.FormatFloat(m.Throughput, 'f', 3, 64),
			strconv.FormatInt(int64(m.Elapsed), 10),
		})
	}
}

func must(ms []bench.Measurement, err error) []bench.Measurement {
	if err != nil {
		log.Fatal(err)
	}
	collected = append(collected, ms...)
	return ms
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

// printMeasurements pivots measurements into an X-by-Series grid.
func printMeasurements(ms []bench.Measurement) {
	if csvMode {
		printCSV(ms)
		return
	}
	series := []string{}
	xs := []string{}
	seenS := map[string]bool{}
	seenX := map[string]bool{}
	val := map[string]float64{}
	for _, m := range ms {
		if !seenS[m.Series] {
			seenS[m.Series] = true
			series = append(series, m.Series)
		}
		if !seenX[m.X] {
			seenX[m.X] = true
			xs = append(xs, m.X)
		}
		val[m.X+"|"+m.Series] = m.Throughput
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s", "workload")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%s", x)
		for _, s := range series {
			if v, ok := val[x+"|"+s]; ok {
				fmt.Fprintf(w, "\t%.2f", v)
			} else {
				fmt.Fprintf(w, "\t-")
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func printStages(ms []bench.Measurement) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tio\tdecode\tagg\tmerge\tio-share")
	for _, m := range ms {
		io := m.Extra["io_ms"]
		dec := m.Extra["decode_ms"]
		agg := m.Extra["agg_ms"]
		mrg := m.Extra["merge_ms"]
		total := io + dec + agg + mrg
		share := 0.0
		if total > 0 {
			share = io / total * 100
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f%%\n", m.X, io, dec, agg, mrg, share)
	}
	w.Flush()
}

func printSlices(ms []bench.Measurement) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "slices\telapsed\tMT/s\tprefix-rows (redundant)")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%v\t%.2f\t%.0f\n",
			strings.TrimPrefix(m.X, "slices="), m.Elapsed, m.Throughput, m.Extra["prefix_rows"])
	}
	w.Flush()
}

func printTable1(cfg bench.Config) {
	section("Table I: combined encoders (semantics + measured ratio on Sine)")
	rows, err := bench.Table1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tsemantics\tratio")
	for _, r := range rows {
		sem := make([]string, len(r.Semantics))
		for i, s := range r.Semantics {
			sem[i] = s.String()
		}
		fmt.Fprintf(w, "%s\t%s\t%.1fx\n", r.Method, strings.Join(sem, "+"), r.Ratio)
	}
	w.Flush()
}

func printTable2(cfg bench.Config) {
	section("Table II: dataset statistics (paper sizes; generated at -rows)")
	rows, err := bench.Table2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "name\tlabel\t#size\t#attr\tcategory\tgenerated\tencoded-bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%d\t%d\n",
			r.Spec.Name, r.Spec.Label, r.Spec.Size, r.Spec.Attrs, r.Spec.Category,
			r.GenRows, r.EncodedBytes)
	}
	w.Flush()
}

func printTable3(cfg bench.Config) {
	section("Table III: benchmark queries (parsed and executed)")
	qs, err := bench.Table3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]string, 0, len(qs))
	for id := range qs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %s: %s\n", id, qs[id])
	}
}
