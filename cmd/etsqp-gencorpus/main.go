// Command etsqp-gencorpus regenerates the checked-in fuzz seed corpora
// under each fuzz target's testdata/fuzz directory:
//
//	go run ./cmd/etsqp-gencorpus [-C moduleRoot]
//
// The corpora are deterministic — valid blocks produced by the real
// encoders plus truncated and bit-flipped variants — so the scheduled
// fuzz CI job starts from inputs that already reach deep decode paths
// instead of spending its budget rediscovering the headers. Ordinary
// `go test` runs also execute every checked-in entry as a regression
// case.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"etsqp/internal/encoding"
	_ "etsqp/internal/encoding/gorilla" // register the gorilla codecs
	"etsqp/internal/encoding/rlbe"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/storage"
)

func main() {
	root := flag.String("C", ".", "module root to write testdata under")
	flag.Parse()
	if err := run(*root); err != nil {
		fmt.Fprintln(os.Stderr, "etsqp-gencorpus:", err)
		os.Exit(1)
	}
}

func run(root string) error {
	series := make([]int64, 300)
	cur := int64(1_700_000_000)
	for i := range series {
		series[i] = cur
		cur += int64(i%7)*13 + 1
	}
	runs := make([]int64, 200)
	for i := range runs {
		runs[i] = int64(i / 25 * 40) // long constant runs for RLE paths
	}

	if err := sqlCorpus(root); err != nil {
		return err
	}
	if err := parseSQLCorpus(root); err != nil {
		return err
	}
	if err := storageCorpus(root, series); err != nil {
		return err
	}
	if err := ts2diffCorpus(root, series, runs); err != nil {
		return err
	}
	if err := gorillaCorpus(root, series); err != nil {
		return err
	}
	if err := flattenCorpus(root); err != nil {
		return err
	}
	if err := overflowParityCorpus(root); err != nil {
		return err
	}
	return rlbeCorpus(root, series, runs)
}

// overflowParityCorpus seeds FuzzOverflowParity (internal/fusion) with the
// extreme-magnitude pages the clamped random-walk differential targets
// never generate: first values and deltas at the int64 boundaries, the
// sqrt(2^63) square threshold, and cancelling walks whose running sums
// wrap while the totals fit. Input shape (see parityRuns in
// internal/fusion/overflow_parity_test.go): an int64 first value plus
// 9-byte runs — big-endian uint64 delta, then a count byte.
func overflowParityCorpus(root string) error {
	run := func(delta int64, countByte byte) []byte {
		var b [9]byte
		binary.BigEndian.PutUint64(b[:8], uint64(delta))
		b[8] = countByte
		return b[:]
	}
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, c := range chunks {
			out = append(out, c...)
		}
		return out
	}
	type entry struct {
		first int64
		raw   []byte
	}
	entries := []entry{
		{math.MaxInt64, run(1, 0)},
		{math.MinInt64, run(-1, 2)},
		{math.MaxInt64 / 2, run(math.MaxInt64/2, 1)},
		{math.MaxInt64 - 10, run(0, 4)},
		// Either side of sqrt(2^63): v² crosses int64 between these.
		{3_037_000_499, run(0, 1)},
		{3_037_000_500, run(0, 1)},
		// Huge single-step delta between two in-range values.
		{-3_000_000_000, run(6_000_000_000, 0)},
		// Cancelling walk: running sums wrap, the total fits.
		{math.MaxInt64 / 2, cat(run(-math.MaxInt64/2, 0), run(math.MaxInt64/2, 0), run(-math.MaxInt64/2, 0))},
		// Steep ramp that leaves int64 mid-page.
		{0, run(1<<40, 31)},
		// Moderate page: the must-succeed regime.
		{1 << 20, cat(run(1<<10, 31), run(-(1<<9), 15))},
	}
	dir := filepath.Join(root, "internal/fusion/testdata/fuzz/FuzzOverflowParity")
	for i, e := range entries {
		lit := "int64(" + strconv.FormatInt(e.first, 10) + ")\n[]byte(" + strconv.Quote(string(e.raw)) + ")"
		if err := writeEntry(dir, i, lit); err != nil {
			return err
		}
	}
	return nil
}

// flattenCorpus seeds FuzzFlatten's 4-byte-first + 3-byte-runs input
// shape (see internal/pipeline/fuzz_test.go) with pages that reach each
// flatten branch: pure repeats, ramps, alternating signs, and the
// truncation cap.
func flattenCorpus(root string) error {
	ramp := []byte{0x2A, 0, 0, 0} // first = 42
	for i := 0; i < 12; i++ {
		ramp = append(ramp, byte(i-6), byte(i%3), byte(i*20))
	}
	repeats := []byte{0xFF, 0xFF, 0xFF, 0xFF} // first = -1
	for i := 0; i < 8; i++ {
		repeats = append(repeats, 0, 0, 0xFF) // delta 0, count 256
	}
	huge := []byte{1, 0, 0, 0}
	for i := 0; i < 300; i++ { // overruns both the pair and total caps
		huge = append(huge, 0x7F, 7, 0xFF)
	}
	dir := filepath.Join(root, "internal/pipeline/testdata/fuzz/FuzzFlatten")
	return writeByteEntries(dir, nil, ramp, repeats, huge, truncated(ramp), flipped(ramp, 5))
}

func sqlCorpus(root string) error {
	seeds := []string{
		"SELECT SUM(A) FROM ts SW(0, 1000);",
		"SELECT MIN(A), MAX(A), VAR(A) FROM ts WHERE TIME >= 10 AND A != 3",
		"SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 100)",
		"SELECT ts1.A*ts2.A FROM ts1, ts2 ORDER BY TIME",
		"SELECT FIRST(A), LAST(A) FROM root.sg.d1.v WHERE TIME <= 99",
		"SELECT COUNT(A) FROM ts WHERE",
	}
	dir := filepath.Join(root, "internal/sqlparse/testdata/fuzz/FuzzParse")
	for i, s := range seeds {
		if err := writeEntry(dir, i, "string("+strconv.Quote(s)+")"); err != nil {
			return err
		}
	}
	return nil
}

// parseSQLCorpus seeds FuzzParseSQL, the serving-path hardening target:
// statements exercising every clause the grammar accepts (windows,
// joins, unions, subqueries, LIMIT), boundary literals, and near-miss
// malformed inputs that reach deep into the parser before failing.
func parseSQLCorpus(root string) error {
	seeds := []string{
		"SELECT SUM(A) FROM ts",
		"SELECT AVG(A), VAR(A) FROM root.sg.d1.v WHERE TIME >= 1 AND A != -7 LIMIT 5",
		"SELECT COUNT(A) FROM ts GROUP BY TIME(100, 25)",
		"SELECT SUM(A) FROM ts SW(0, 1000, 250);",
		"SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2",
		"SELECT * FROM ts1 UNION ts2 ORDER BY TIME LIMIT 3",
		"SELECT MAX(A) FROM (SELECT * FROM ts WHERE A > 100)",
		"SELECT SUM(A) FROM ts WHERE TIME >= 9223372036854775807",
		"SELECT FIRST(A), LAST(A) FROM ts WHERE TIME >= -1 AND TIME <= 1",
		"SELECT SUM(A) FROM ts SW(0, 1000", // near-miss: unclosed window
		"SELECT ts1.A+ts2.A FROM ts1, ts2 GROUP BY TIME(",
	}
	dir := filepath.Join(root, "internal/sqlparse/testdata/fuzz/FuzzParseSQL")
	for i, s := range seeds {
		if err := writeEntry(dir, i, "string("+strconv.Quote(s)+")"); err != nil {
			return err
		}
	}
	return nil
}

func storageCorpus(root string, series []int64) error {
	st := storage.NewStore()
	ts := make([]int64, len(series))
	for i := range ts {
		ts[i] = int64(i) * 60
	}
	if err := st.Append("s", ts, series, storage.Options{PageSize: 64}); err != nil {
		return err
	}
	tmp, err := os.CreateTemp("", "etsqp-corpus-*")
	if err != nil {
		return err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	if err := st.WriteFile(tmp.Name()); err != nil {
		return err
	}
	valid, err := os.ReadFile(tmp.Name())
	if err != nil {
		return err
	}
	dir := filepath.Join(root, "internal/storage/testdata/fuzz/FuzzReadBytes")
	return writeByteEntries(dir, valid, truncated(valid), flipped(valid, 0))
}

func ts2diffCorpus(root string, series, runs []int64) error {
	b1, err := ts2diff.Encode(series, ts2diff.Order1)
	if err != nil {
		return err
	}
	b2, err := ts2diff.Encode(series, ts2diff.Order2)
	if err != nil {
		return err
	}
	br, err := ts2diff.Encode(runs, ts2diff.Order1)
	if err != nil {
		return err
	}
	m1 := b1.Marshal()
	dir := filepath.Join(root, "internal/encoding/ts2diff/testdata/fuzz/FuzzUnmarshal")
	return writeByteEntries(dir, m1, b2.Marshal(), br.Marshal(), truncated(m1), flipped(m1, len(m1)/2))
}

func gorillaCorpus(root string, series []int64) error {
	dir := filepath.Join(root, "internal/encoding/gorilla/testdata/fuzz/FuzzRoundTrip")
	var entries [][]byte
	// Raw value bytes: the round-trip half of the target decodes these
	// into a series; 8 bytes per value, big-endian.
	raw := make([]byte, 0, len(series)*8)
	for _, v := range series[:64] {
		for s := 56; s >= 0; s -= 8 {
			raw = append(raw, byte(uint64(v)>>uint(s)))
		}
	}
	entries = append(entries, raw)
	// Valid blocks from both registered variants feed the adversarial
	// half with inputs that parse.
	for _, name := range []string{"gorilla", "gorilla-time"} {
		c, err := encoding.Lookup(name)
		if err != nil {
			return err
		}
		blk, err := c.Encode(series)
		if err != nil {
			return err
		}
		entries = append(entries, blk, truncated(blk), flipped(blk, len(blk)/2))
	}
	return writeByteEntries(dir, entries...)
}

func rlbeCorpus(root string, series, runs []int64) error {
	b, err := rlbe.Encode(series)
	if err != nil {
		return err
	}
	br, err := rlbe.Encode(runs)
	if err != nil {
		return err
	}
	m := b.Marshal()
	dir := filepath.Join(root, "internal/encoding/rlbe/testdata/fuzz/FuzzUnmarshal")
	return writeByteEntries(dir, m, br.Marshal(), truncated(m), flipped(m, len(m)-1))
}

func truncated(b []byte) []byte { return b[:len(b)/2] }

func flipped(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	if len(out) > 0 {
		out[i%len(out)] ^= 0x40
	}
	return out
}

func writeByteEntries(dir string, entries ...[]byte) error {
	for i, e := range entries {
		if err := writeEntry(dir, i, "[]byte("+strconv.Quote(string(e))+")"); err != nil {
			return err
		}
	}
	return nil
}

// writeEntry writes one seed in the Go fuzz corpus file format.
func writeEntry(dir string, i int, literal string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
	return os.WriteFile(name, []byte("go test fuzz v1\n"+literal+"\n"), 0o644)
}
