// Package etsqp reproduces "Exploring SIMD Vectorization in Aggregation
// Pipelines for Encoded IoT Data" (Kang, Song, Wang — ICDE 2025): an
// IoT time-series storage and query engine whose decoding pipelines are
// vectorized (Section III), fused with aggregation operators so that
// SUM/AVG/COUNT/VAR/CORR run on encoded form without materializing
// columns (Section IV, internal/fusion), and pruned early by encoder
// statistics (Section V, internal/prune). A FastLanes-style transposed
// layout (internal/fastlanes) and serial/SBoost executors serve as the
// paper's baselines, and internal/transport implements the Section I
// delivery path: devices ship CRC-framed encoded pages that the server
// ingests without decoding.
//
// The query surface — aggregates, sliding/hopping windows, series
// concatenation and natural join, predicates, subqueries, LIMIT — is
// specified in docs/QUERYING.md, which the querydoc analyzer keeps in
// sync with the parser in both directions.
//
// Execution is observable end to end: every query reports engine.Stats,
// EXPLAIN ANALYZE renders those observed counters next to the plan's
// estimates, and internal/obs exposes process-global metrics for every
// layer (see docs/OBSERVABILITY.md; wire and file formats are specified
// in docs/FORMATS.md).
//
// The invariants behind the performance claims — allocation-free unpack
// kernels, panic-free decode paths, gated observability, consistent plan
// tables, write-disjoint parallel fan-outs, declared mutex/atomic
// protocols on every shared struct (//etsqp:guardedby, //etsqp:atomic,
// lock-order acyclicity), and value-range proofs on the aggregation
// kernels (//etsqp:rangecheck interval analysis with //etsqp:bounds
// contracts, so Section VI-C overflow surfaces as an error rather than
// a wrapped sum) — are enforced by the cmd/etsqp-lint analyzer
// suite, and cmd/etsqp-vet checks the compiler's own diagnostics
// against per-kernel bounds-check-elimination, escape and inlining
// contracts (docs/STATIC_ANALYSIS.md).
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable entry points are cmd/etsqp-bench (regenerates every table and
// figure of the paper's evaluation), cmd/etsqp-cli (a SQL shell), and the
// examples/ programs.
package etsqp
