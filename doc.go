// Package etsqp reproduces "Exploring SIMD Vectorization in Aggregation
// Pipelines for Encoded IoT Data" (Kang, Song, Wang — ICDE 2025): an
// IoT time-series storage and query engine whose decoding pipelines are
// vectorized, fused with aggregation operators, and pruned by encoder
// statistics.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable entry points are cmd/etsqp-bench (regenerates every table and
// figure of the paper's evaluation), cmd/etsqp-cli (a SQL shell), and the
// examples/ programs.
package etsqp
