// Benchmarks regenerating the paper's evaluation: one testing.B target
// per table and figure (Section VII). Run with
//
//	go test -bench=. -benchmem
//
// Throughput is reported as Mtuples/s custom metrics; absolute numbers
// depend on the host, but the orderings (who wins, by what factor) are
// the reproduction targets recorded in EXPERIMENTS.md.
package etsqp_test

import (
	"strings"
	"testing"

	"etsqp/internal/bench"
)

var benchCfg = bench.Config{Rows: 60_000, Seed: 42, PageSize: 4096}

// report re-runs a figure once per benchmark iteration and publishes the
// per-series throughput of the final run as custom metrics.
func report(b *testing.B, f func() ([]bench.Measurement, error)) {
	b.Helper()
	var last []bench.Measurement
	for i := 0; i < b.N; i++ {
		ms, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = ms
	}
	seen := map[string]bool{}
	for _, m := range last {
		key := m.Series + "|" + m.X
		if seen[key] {
			continue
		}
		seen[key] = true
		// Metric units must not contain whitespace.
		unit := "MT/s:" + strings.ReplaceAll(key, " ", "_")
		b.ReportMetric(m.Throughput, unit)
	}
}

// BenchmarkTable1Encoders measures Table I: encode+decode round trips of
// every combined encoder on the Sine dataset.
func BenchmarkTable1Encoders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Ratio, "ratio:"+r.Method)
			}
		}
	}
}

// BenchmarkTable2Datasets measures Table II: generation plus default
// encoding of each dataset.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Queries executes all six benchmark queries once.
func BenchmarkTable3Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 reproduces Figure 10: approach × dataset × query
// throughput (the headline comparison).
func BenchmarkFig10(b *testing.B) {
	cfg := benchCfg
	cfg.Rows = 30_000 // 6 datasets × 5 approaches × 6 queries per iter
	report(b, func() ([]bench.Measurement, error) { return bench.Fig10(cfg) })
}

// BenchmarkFig11 reproduces Figure 11: thread scaling per approach.
func BenchmarkFig11(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.Fig11(benchCfg, []int{1, 2, 4})
	})
}

// BenchmarkFig12DeltaThreads reproduces Figure 12(a,b).
func BenchmarkFig12DeltaThreads(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.Fig12DeltaThreads(benchCfg, []int{1, 2, 4})
	})
}

// BenchmarkFig12RunLength reproduces Figure 12(c,d).
func BenchmarkFig12RunLength(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.Fig12RunLength(benchCfg, []int{1, 4, 16, 64, 256})
	})
}

// BenchmarkFig12PackWidth reproduces Figure 12(e,f).
func BenchmarkFig12PackWidth(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.Fig12PackWidth(benchCfg, []uint{4, 8, 12, 16, 20, 24})
	})
}

// BenchmarkFig13 reproduces Figure 13: deployment comparison.
func BenchmarkFig13(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) { return bench.Fig13(benchCfg) })
}

// BenchmarkFig14Fusion reproduces Figure 14(a): decoder-fusion ablation.
func BenchmarkFig14Fusion(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) { return bench.Fig14Fusion(benchCfg) })
}

// BenchmarkFig14Stages reproduces Figure 14(b): stage time breakdown.
func BenchmarkFig14Stages(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) { return bench.Fig14Stages(benchCfg) })
}

// BenchmarkFig14Slices reproduces Figure 14(c,d): slice-count ablation.
func BenchmarkFig14Slices(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.Fig14Slices(benchCfg, []int{1, 2, 4, 8, 16, 32})
	})
}

// BenchmarkFigWindow measures hopping-window aggregation as the overlap
// factor grows: fused segment closed forms vs the serial decoded fold.
func BenchmarkFigWindow(b *testing.B) {
	report(b, func() ([]bench.Measurement, error) {
		return bench.FigWindow(benchCfg, []int{1, 2, 4, 8})
	})
}
