package etsqp_test

import (
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"etsqp/internal/dataset"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/fastlanes"
)

// TestEndToEndLifecycle drives the full system the way a deployment
// would: streaming ingestion → page store → compaction → indexed file on
// disk → lazy reopen → queries in every execution mode, checked against
// a scan-based reference.
func TestEndToEndLifecycle(t *testing.T) {
	d, err := dataset.Generate("Gas", 30_000, 99)
	if err != nil {
		t.Fatal(err)
	}
	ts, vals := d.Time, d.Attrs[0]

	// 1. Streaming ingestion: points arrive one at a time; short flush
	// blocks accumulate (Figure 1(b) flexibility).
	st := storage.NewStore()
	const flushEvery = 999
	for off := 0; off < len(ts); off += flushEvery {
		end := off + flushEvery
		if end > len(ts) {
			end = len(ts)
		}
		if err := st.Append("root.gas.s0", ts[off:end], vals[off:end],
			storage.Options{PageSize: flushEvery}); err != nil {
			t.Fatal(err)
		}
	}
	ser, _ := st.Series("root.gas.s0")
	if len(ser.Pages) < 30 {
		t.Fatalf("expected many small flush pages, got %d", len(ser.Pages))
	}

	// 2. Compaction into uniform pages.
	if err := st.Compact("root.gas.s0", storage.Options{PageSize: 4096}); err != nil {
		t.Fatal(err)
	}
	if len(ser.Pages) != 8 {
		t.Fatalf("pages after compaction = %d", len(ser.Pages))
	}

	// 3. Persist with the lazy index, reopen, load on demand.
	path := filepath.Join(t.TempDir(), "gas.etsqp")
	if err := st.WriteIndexedFile(path); err != nil {
		t.Fatal(err)
	}
	lf, err := storage.OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	st2, err := lf.LoadStore()
	if err != nil {
		t.Fatal(err)
	}

	// 4. Queries across all modes agree with the reference scan.
	t1, t2 := ts[4000], ts[26_000]
	var wantSum, wantCount int64
	for i := range ts {
		if ts[i] >= t1 && ts[i] <= t2 {
			wantSum += vals[i]
			wantCount++
		}
	}
	for _, mode := range []engine.Mode{
		engine.ModeETSQP, engine.ModeETSQPPrune, engine.ModeSerial, engine.ModeSBoost,
	} {
		e := engine.New(st2, mode)
		res, err := e.ExecuteSQL(fmt.Sprintf(
			"SELECT SUM(A), COUNT(A), AVG(A) FROM root.gas.s0 WHERE TIME >= %d AND TIME <= %d", t1, t2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Aggregates["SUM(A)"] != float64(wantSum) ||
			res.Aggregates["COUNT(A)"] != float64(wantCount) {
			t.Fatalf("%v: %v (want sum %d count %d)", mode, res.Aggregates, wantSum, wantCount)
		}
		wantAvg := float64(wantSum) / float64(wantCount)
		if math.Abs(res.Aggregates["AVG(A)"]-wantAvg) > 1e-9 {
			t.Fatalf("%v: AVG %v want %v", mode, res.Aggregates["AVG(A)"], wantAvg)
		}
	}

	// 5. EXPLAIN agrees with what actually ran.
	e := engine.New(st2, engine.ModeETSQP)
	info, err := e.Explain(fmt.Sprintf(
		"SELECT SUM(A) FROM root.gas.s0 WHERE TIME >= %d AND TIME <= %d", t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Shape != "aggregate" || !info.Fused || info.Pages < 5 {
		t.Fatalf("plan: %+v", info)
	}
}

// TestStreamingEqualsBatchEncoding confirms that the incremental encoder
// and one-shot encoding produce byte-identical blocks for full windows.
func TestStreamingEqualsBatchEncoding(t *testing.T) {
	d, _ := dataset.Generate("Atm", 8192, 5)
	se, err := ts2diff.NewStreamEncoder(ts2diff.Order1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Attrs[0] {
		if err := se.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	blocks := se.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	batch1, _ := ts2diff.Encode(d.Attrs[0][:4096], ts2diff.Order1)
	if !reflect.DeepEqual(blocks[0].Marshal(), batch1.Marshal()) {
		t.Fatal("streaming block differs from batch encoding")
	}
}

// TestBenchmarkQueriesAcrossDatasets is the Table III smoke matrix: all
// six query shapes on all six datasets under the full system.
func TestBenchmarkQueriesAcrossDatasets(t *testing.T) {
	for _, spec := range dataset.Specs {
		d, err := dataset.Generate(spec.Label, 6000, 3)
		if err != nil {
			t.Fatal(err)
		}
		st := storage.NewStore()
		if err := st.Append("ts1", d.Time, d.Attrs[0], storage.Options{PageSize: 1024}); err != nil {
			t.Fatal(err)
		}
		a2 := d.Attrs[len(d.Attrs)-1]
		t2 := make([]int64, 0, 3000)
		v2 := make([]int64, 0, 3000)
		for i := 0; i < len(d.Time); i += 2 {
			t2 = append(t2, d.Time[i])
			v2 = append(v2, a2[i])
		}
		if err := st.Append("ts2", t2, v2, storage.Options{PageSize: 1024}); err != nil {
			t.Fatal(err)
		}
		e := engine.New(st, engine.ModeETSQPPrune)
		interval := (d.Time[len(d.Time)-1] - d.Time[0]) / int64(len(d.Time)-1)
		queries := []string{
			fmt.Sprintf("SELECT SUM(A) FROM ts1 SW(%d, %d)", d.Time[0], interval*1000),
			fmt.Sprintf("SELECT AVG(A) FROM ts1 SW(%d, %d)", d.Time[0], interval*1000),
			fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts1 WHERE A > %d)", d.Attrs[0][0]),
			"SELECT ts1.A + ts2.A FROM ts1, ts2",
			"SELECT * FROM ts1 UNION ts2 ORDER BY TIME",
			"SELECT * FROM ts1, ts2 LIMIT 100",
		}
		for qi, sql := range queries {
			if _, err := e.ExecuteSQL(sql); err != nil {
				t.Fatalf("%s Q%d: %v", spec.Label, qi+1, err)
			}
		}
	}
}
